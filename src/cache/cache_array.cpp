#include "cache/cache_array.hpp"

#include <bit>

#include "snap/state_io.hpp"

namespace smappic::cache
{

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
                       std::uint32_t line_bytes)
    : ways_(ways), lineBytes_(line_bytes)
{
    fatalIf(ways == 0, "cache needs at least one way");
    fatalIf(line_bytes == 0 || !std::has_single_bit(line_bytes),
            "cache line size must be a power of two");
    fatalIf(size_bytes % (static_cast<std::uint64_t>(ways) * line_bytes) != 0,
            "cache size must be a multiple of ways * line size");
    std::uint64_t sets = size_bytes / ways / line_bytes;
    fatalIf(sets == 0 || !std::has_single_bit(sets),
            "cache set count must be a nonzero power of two");
    sets_ = static_cast<std::uint32_t>(sets);
    entries_.resize(static_cast<std::size_t>(sets_) * ways_);
}

std::uint32_t
CacheArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / lineBytes_) & (sets_ - 1));
}

CacheArray::Entry *
CacheArray::find(Addr addr)
{
    Addr line = addr & ~static_cast<Addr>(lineBytes_ - 1);
    std::size_t base = static_cast<std::size_t>(setIndex(addr)) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

const CacheArray::Entry *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

bool
CacheArray::lookup(Addr addr)
{
    Entry *e = find(addr);
    if (!e)
        return false;
    e->lastUse = ++useClock_;
    return true;
}

bool
CacheArray::lookupIfState(Addr addr, std::uint32_t state)
{
    Entry *e = find(addr);
    if (!e || e->state != state)
        return false;
    e->lastUse = ++useClock_;
    return true;
}

bool
CacheArray::probe(Addr addr) const
{
    return find(addr) != nullptr;
}

std::uint32_t
CacheArray::state(Addr addr) const
{
    const Entry *e = find(addr);
    panicIf(!e, "state() on non-resident line");
    return e->state;
}

void
CacheArray::setState(Addr addr, std::uint32_t state)
{
    Entry *e = find(addr);
    panicIf(!e, "setState() on non-resident line");
    e->state = state;
}

std::optional<Victim>
CacheArray::insert(Addr addr, std::uint32_t state)
{
    panicIf(find(addr) != nullptr, "insert() of already-resident line");
    Addr line = addr & ~static_cast<Addr>(lineBytes_ - 1);
    std::size_t base = static_cast<std::size_t>(setIndex(addr)) * ways_;

    Entry *slot = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[base + w];
        if (!e.valid) {
            slot = &e;
            break;
        }
    }

    std::optional<Victim> victim;
    if (!slot) {
        // Evict true-LRU.
        slot = &entries_[base];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            Entry &e = entries_[base + w];
            if (e.lastUse < slot->lastUse)
                slot = &e;
        }
        victim = Victim{slot->line, slot->state};
    }

    slot->line = line;
    slot->state = state;
    slot->valid = true;
    slot->lastUse = ++useClock_;
    return victim;
}

std::optional<std::uint32_t>
CacheArray::invalidate(Addr addr)
{
    Entry *e = find(addr);
    if (!e)
        return std::nullopt;
    e->valid = false;
    return e->state;
}

void
CacheArray::flush()
{
    for (Entry &e : entries_)
        e.valid = false;
}

void
CacheArray::forEachLine(
    const std::function<void(Addr, std::uint32_t)> &fn) const
{
    for (const Entry &e : entries_) {
        if (e.valid)
            fn(e.line, e.state);
    }
}

std::uint64_t
CacheArray::occupancy() const
{
    std::uint64_t n = 0;
    for (const Entry &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
CacheArray::saveState(snap::Writer &w) const
{
    w.u32(sets_);
    w.u32(ways_);
    w.u32(lineBytes_);
    w.u64(useClock_);
    for (const Entry &e : entries_) {
        w.boolean(e.valid);
        if (!e.valid)
            continue;
        w.u64(e.line);
        w.u32(e.state);
        w.u64(e.lastUse);
    }
}

void
CacheArray::restoreState(snap::Reader &r)
{
    std::uint32_t sets = r.u32();
    std::uint32_t ways = r.u32();
    std::uint32_t line_bytes = r.u32();
    fatalIf(sets != sets_ || ways != ways_ || line_bytes != lineBytes_,
            strfmt("checkpoint cache geometry %ux%u/%uB does not match the "
                   "live array's %ux%u/%uB",
                   sets, ways, line_bytes, sets_, ways_, lineBytes_));
    useClock_ = r.u64();
    for (Entry &e : entries_) {
        e.valid = r.boolean();
        if (!e.valid) {
            e = Entry{};
            continue;
        }
        e.line = r.u64();
        e.state = r.u32();
        e.lastUse = r.u64();
    }
}

} // namespace smappic::cache
