#include "workload/stream.hpp"

#include "sim/log.hpp"

namespace smappic::workload
{

const char *
streamKernelName(StreamKernel k)
{
    switch (k) {
      case StreamKernel::kCopy: return "Copy";
      case StreamKernel::kScale: return "Scale";
      case StreamKernel::kAdd: return "Add";
      case StreamKernel::kTriad: return "Triad";
    }
    return "?";
}

StreamResult
runStream(os::GuestSystem &os, const std::vector<GlobalTileId> &tiles,
          StreamKernel kernel, const StreamConfig &cfg)
{
    fatalIf(tiles.empty(), "STREAM needs at least one worker");
    const std::uint64_t n = cfg.elementsPerThread;
    const std::uint64_t workers = tiles.size();
    const std::uint64_t kScalar = 3;

    // Per-thread a/b/c arrays, placed by the active NUMA policy on first
    // touch during init.
    Addr a_va = os.vmAlloc(workers * n * 8);
    Addr b_va = os.vmAlloc(workers * n * 8);
    Addr c_va = os.vmAlloc(workers * n * 8);

    auto worker_index = [&](GlobalTileId tile) -> std::uint64_t {
        for (std::uint64_t i = 0; i < workers; ++i) {
            if (tiles[i] == tile)
                return i;
        }
        panic("worker tile not found");
    };

    os.parallelPhase(tiles, [&](os::Worker &w) {
        std::uint64_t me = worker_index(w.tile());
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr off = (me * n + i) * 8;
            w.store(a_va + off, i + 1);
            w.store(b_va + off, 2 * (i + 1));
            w.store(c_va + off, 0);
        }
    });

    Cycles start = os.elapsed();
    os.parallelPhase(tiles, [&](os::Worker &w) {
        std::uint64_t me = worker_index(w.tile());
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr off = (me * n + i) * 8;
            switch (kernel) {
              case StreamKernel::kCopy:
                w.store(c_va + off, w.load(a_va + off));
                break;
              case StreamKernel::kScale:
                w.compute(cfg.computePerElement);
                w.store(b_va + off, kScalar * w.load(c_va + off));
                break;
              case StreamKernel::kAdd:
                w.compute(cfg.computePerElement);
                w.store(c_va + off,
                        w.load(a_va + off) + w.load(b_va + off));
                break;
              case StreamKernel::kTriad:
                w.compute(cfg.computePerElement);
                w.store(a_va + off,
                        w.load(b_va + off) +
                            kScalar * w.load(c_va + off));
                break;
            }
        }
    });

    StreamResult r;
    r.cycles = os.elapsed() - start;
    std::uint64_t per_elem_bytes =
        (kernel == StreamKernel::kCopy || kernel == StreamKernel::kScale)
            ? 16
            : 24;
    r.bytesMoved = workers * n * per_elem_bytes;
    r.bytesPerCycle = static_cast<double>(r.bytesMoved) /
                      static_cast<double>(r.cycles);

    // Functional verification on worker 0's slice.
    auto &mem = os.memorySystem().memory();
    r.correct = true;
    for (std::uint64_t i = 0; i < 16; ++i) {
        Addr off = i * 8;
        std::uint64_t a = mem.load(os.translate(a_va + off, 0), 8);
        std::uint64_t b = mem.load(os.translate(b_va + off, 0), 8);
        std::uint64_t c = mem.load(os.translate(c_va + off, 0), 8);
        switch (kernel) {
          case StreamKernel::kCopy:
            r.correct = r.correct && c == i + 1;
            break;
          case StreamKernel::kScale:
            r.correct = r.correct && b == kScalar * c;
            break;
          case StreamKernel::kAdd:
            r.correct = r.correct && c == a + b;
            break;
          case StreamKernel::kTriad:
            r.correct = r.correct && a == b + kScalar * c;
            break;
        }
    }
    return r;
}

} // namespace smappic::workload
