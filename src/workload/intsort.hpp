/**
 * @file
 * Parallel bucket (integer) sort modeled on the NAS Parallel Benchmarks IS
 * kernel the paper runs in section 4.1 (Figs 8-9).
 *
 * Bulk-synchronous structure per iteration:
 *   1. local histogram of each worker's key chunk,
 *   2. histogram reduction (cross-worker communication),
 *   3. prefix sums to compute bucket bases,
 *   4. all-to-all scatter of keys into the sorted array.
 *
 * The scatter phase is where NUMA placement matters: with first-touch
 * (NUMA on) each worker's chunk and most of its bucket targets are local;
 * with an oblivious kernel (NUMA off) pages are scattered and most
 * accesses cross nodes, congesting the inter-node links — exactly the
 * effect the paper measures.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "os/guest_system.hpp"
#include "sim/types.hpp"

namespace smappic::workload
{

/** Integer-sort parameters (scaled-down NPB IS class). */
struct IntSortConfig
{
    std::uint64_t keys = 1 << 18;   ///< Total keys (NPB C is 2^27).
    std::uint32_t maxKey = 1 << 16; ///< Key range.
    std::uint32_t buckets = 512;
    std::uint32_t iterations = 1;
    std::uint64_t seed = 42;
    /** ALU cycles charged per key in the scatter loop. */
    Cycles computePerKey = 4;
};

/** Outcome of a sort run. */
struct IntSortResult
{
    Cycles cycles = 0;        ///< Virtual time for all iterations.
    bool sorted = false;      ///< Functional verification outcome.
    double remoteFraction = 0; ///< Fraction of misses serviced remotely.
};

/**
 * Runs the benchmark on @p tiles (one worker per tile).
 * Memory is allocated inside so page placement follows @p os's NUMA mode.
 */
IntSortResult runIntSort(os::GuestSystem &os,
                         const std::vector<GlobalTileId> &tiles,
                         const IntSortConfig &cfg);

} // namespace smappic::workload
