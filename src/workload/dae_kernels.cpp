#include "workload/dae_kernels.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic::workload
{

std::string
daeKernelName(DaeKernel k)
{
    switch (k) {
      case DaeKernel::kSpmv: return "SPMV";
      case DaeKernel::kSpmm: return "SPMM";
      case DaeKernel::kSdhp: return "SDHP";
      case DaeKernel::kBfs: return "BFS";
    }
    return "?";
}

std::string
daeModeName(DaeMode m)
{
    switch (m) {
      case DaeMode::kSingleThread: return "1 thread";
      case DaeMode::kMaple: return "MAPLE";
      case DaeMode::kTwoThreads: return "2 threads";
    }
    return "?";
}

namespace
{

/** Per-kernel cost/shape parameters. */
struct KernelShape
{
    Cycles computePerElem;    ///< Execute-side ALU work per element.
    std::uint32_t elemBytes;  ///< Gather granularity.
    bool denseTrailer;        ///< SPMM: extra sequential dense loads.
};

KernelShape
shapeOf(DaeKernel k, const DaeConfig &cfg)
{
    // Execute-side cycles per element are sized for the kernels' real
    // arithmetic on an in-order core: an FP multiply-accumulate plus row
    // bookkeeping (SPMV), K column MACs (SPMM), hash+compare (SDHP) and
    // frontier bookkeeping (BFS).
    switch (k) {
      case DaeKernel::kSpmv:
        return {26, 8, false};
      case DaeKernel::kSpmm:
        return {static_cast<Cycles>(8 * cfg.denseColumns), 8, true};
      case DaeKernel::kSdhp:
        return {22, 8, false};
      case DaeKernel::kBfs:
        return {18, 1, false};
    }
    return {8, 8, false};
}

} // namespace

DaeResult
runDaeKernel(os::GuestSystem &os, DaeKernel kernel, DaeMode mode,
             const std::vector<GlobalTileId> &tiles,
             accel::MapleEngine *engine, const DaeConfig &cfg)
{
    fatalIf(tiles.empty(), "DAE kernel needs at least one core tile");
    fatalIf(mode == DaeMode::kTwoThreads && tiles.size() < 2,
            "two-thread mode needs two core tiles");
    fatalIf(mode == DaeMode::kMaple && engine == nullptr,
            "MAPLE mode needs an engine");

    auto &cs = os.memorySystem();
    NodeId node = tiles[0] / cs.geometry().tilesPerNode;
    KernelShape shape = shapeOf(kernel, cfg);
    std::uint64_t stride =
        shape.denseTrailer ? cfg.denseColumns : 1;

    // Data: an index stream (CSR columns / hash slots / adjacency) and a
    // gather table (dense vector / hash table / visited map). Placed on
    // the core's node with physically contiguous frames so the engine can
    // be programmed with physical bases, as real MAPLE is.
    Addr idx_va = os.vmAlloc(cfg.elements * 8, os::AllocPolicy::kOnNode,
                             node);
    Addr table_va = os.vmAlloc(cfg.tableSize * stride * shape.elemBytes,
                               os::AllocPolicy::kOnNode, node);

    sim::Xoroshiro rng(cfg.seed);
    auto &mem = cs.memory();
    for (std::uint64_t i = 0; i < cfg.elements; ++i)
        mem.store(os.translate(idx_va + i * 8, node), 8,
                  rng.below(cfg.tableSize));
    for (std::uint64_t t = 0; t < cfg.tableSize * stride; ++t) {
        Addr pa = os.translate(table_va + t * shape.elemBytes, node);
        mem.store(pa, shape.elemBytes,
                  (t * 0x9e3779b97f4a7c15ULL) >> 32);
    }

    if (mode == DaeMode::kMaple) {
        Addr idx_pa = os.translate(idx_va, node);
        Addr table_pa = os.translate(table_va, node);
        engine->programIndirect(idx_pa, cfg.elements, table_pa,
                                shape.elemBytes * (shape.denseTrailer
                                                       ? cfg.denseColumns
                                                       : 1),
                                os.elapsed(),
                                shape.denseTrailer ? cfg.denseColumns : 1);
    }

    Cycles start = os.elapsed();
    std::uint64_t checksum = 0;

    auto body = [&](os::Worker &w, std::uint64_t begin, std::uint64_t end,
                    bool use_maple) {
        std::uint64_t sum = 0;
        for (std::uint64_t i = begin; i < end; ++i) {
            std::uint64_t v;
            std::uint64_t index = 0;
            if (use_maple) {
                // Decoupled: the engine consumed the index stream; the
                // execute side just pops supplied values.
                Cycles lat = 0;
                v = engine->consume(w.tile(), w.now(), lat);
                w.compute(lat);
            } else {
                index = w.load(idx_va + i * 8);
                v = w.load(table_va +
                               index * stride * shape.elemBytes,
                           shape.elemBytes);
            }
            sum += v + i;
            w.compute(shape.computePerElem);
            if (shape.denseTrailer) {
                // SPMM: the remaining dense columns of the gathered row.
                for (std::uint32_t k = 1; k < cfg.denseColumns; ++k) {
                    std::uint64_t col;
                    if (use_maple) {
                        Cycles lat = 0;
                        col = engine->consume(w.tile(), w.now(), lat,
                                              /*streaming=*/true);
                        w.compute(lat);
                    } else {
                        col = w.load(table_va +
                                     (index * stride + k) *
                                         shape.elemBytes,
                                     shape.elemBytes);
                    }
                    sum += col;
                }
            }
        }
        checksum += sum;
    };

    switch (mode) {
      case DaeMode::kSingleThread:
        os.serialSection(tiles[0], [&](os::Worker &w) {
            body(w, 0, cfg.elements, false);
        });
        break;
      case DaeMode::kMaple:
        os.serialSection(tiles[0], [&](os::Worker &w) {
            body(w, 0, cfg.elements, true);
        });
        break;
      case DaeMode::kTwoThreads: {
          std::uint64_t half = cfg.elements / 2;
          os.parallelPhase({tiles[0], tiles[1]}, [&](os::Worker &w) {
              if (w.tile() == tiles[0])
                  body(w, 0, half, false);
              else
                  body(w, half, cfg.elements, false);
          });
          break;
      }
    }

    DaeResult r;
    r.cycles = os.elapsed() - start;
    r.checksum = checksum;
    return r;
}

} // namespace smappic::workload
