/**
 * @file
 * GNG accelerator evaluation workloads (paper section 4.2, Fig. 10):
 * benchmark A ("Noise generator") produces a buffer of Gaussian noise;
 * benchmark B ("Noise applier") converts noise to 8-bit integers and adds
 * it to a byte sequence. Each runs in four modes: software generation on
 * the core, and hardware fetches returning 1, 2 or 4 packed samples.
 */

#pragma once

#include <cstdint>

#include "accel/gng.hpp"
#include "os/guest_system.hpp"
#include "sim/types.hpp"

namespace smappic::workload
{

/** Fig. 10's execution modes. */
enum class GngMode : std::uint8_t
{
    kSoftware, ///< Box-Muller in software on the core.
    kFetch1,   ///< One 16-bit sample per non-cacheable load.
    kFetch2,   ///< Two samples packed in a 32-bit load.
    kFetch4,   ///< Four samples packed in a 64-bit load.
};

struct NoiseConfig
{
    std::uint64_t samples = 1 << 16; ///< Paper: 64 MB / 32 MB (scaled).
    Addr deviceBase = 0;             ///< GNG MMIO window (VA == PA).
};

struct NoiseResult
{
    Cycles cycles = 0;
    std::uint64_t samplesProduced = 0;
};

const char *gngModeName(GngMode m);

/** Benchmark A: generate cfg.samples noise samples into a buffer. */
NoiseResult runNoiseGenerator(os::GuestSystem &os, GlobalTileId tile,
                              GngMode mode, const NoiseConfig &cfg);

/** Benchmark B: apply noise to a byte sequence of cfg.samples elements. */
NoiseResult runNoiseApplier(os::GuestSystem &os, GlobalTileId tile,
                            GngMode mode, const NoiseConfig &cfg);

} // namespace smappic::workload
