#include "workload/intsort.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic::workload
{

IntSortResult
runIntSort(os::GuestSystem &os, const std::vector<GlobalTileId> &tiles,
           const IntSortConfig &cfg)
{
    fatalIf(tiles.empty(), "integer sort needs at least one worker");
    auto &cs = os.memorySystem();
    auto &mem = cs.memory();
    const std::uint64_t n = cfg.keys;
    const std::uint32_t workers = static_cast<std::uint32_t>(tiles.size());
    const std::uint64_t chunk = (n + workers - 1) / workers;
    const std::uint32_t buckets = cfg.buckets;

    // Virtual allocations: key chunks are per-worker so first touch places
    // them locally under NUMA-on; shared arrays are touched by everyone.
    Addr keys_va = os.vmAlloc(n * 8);
    Addr staging_va = os.vmAlloc(n * 8); ///< Per-worker, bucket-grouped.
    Addr out_va = os.vmAlloc(n * 8);
    Addr hist_va = os.vmAlloc(static_cast<std::uint64_t>(workers) *
                              buckets * 8);
    Addr base_va = os.vmAlloc(buckets * 8);

    auto worker_index = [&](GlobalTileId tile) {
        for (std::uint32_t i = 0; i < workers; ++i) {
            if (tiles[i] == tile)
                return i;
        }
        panic("worker tile not found");
    };
    auto key_range = [&](std::uint32_t w, std::uint64_t &begin,
                         std::uint64_t &end) {
        begin = static_cast<std::uint64_t>(w) * chunk;
        end = std::min(n, begin + chunk);
    };
    auto bucket_of = [&](std::uint64_t key) {
        return static_cast<std::uint32_t>(key * buckets / cfg.maxKey);
    };

    std::uint64_t snapshot_remote =
        cs.stats().counterValue("cs.serviced.llcRemote") +
        cs.stats().counterValue("cs.serviced.dramRemote");
    std::uint64_t snapshot_total =
        snapshot_remote + cs.stats().counterValue("cs.serviced.llcLocal") +
        cs.stats().counterValue("cs.serviced.dramLocal");

    Cycles start = os.elapsed();

    // Init phase: each worker generates and writes its own chunk (this is
    // the first touch that places key pages under NUMA-on).
    os.parallelPhase(tiles, [&](os::Worker &w) {
        std::uint32_t me = worker_index(w.tile());
        std::uint64_t begin;
        std::uint64_t end;
        key_range(me, begin, end);
        sim::Xoroshiro rng(cfg.seed + me);
        for (std::uint64_t i = begin; i < end; ++i) {
            std::uint64_t key = rng.below(cfg.maxKey);
            w.compute(2);
            w.store(keys_va + i * 8, key);
        }
    });

    for (std::uint32_t iter = 0; iter < cfg.iterations; ++iter) {
        // Phase 1: local histograms.
        os.parallelPhase(tiles, [&](os::Worker &w) {
            std::uint32_t me = worker_index(w.tile());
            Addr my_hist = hist_va +
                           static_cast<Addr>(me) * buckets * 8;
            for (std::uint32_t b = 0; b < buckets; ++b)
                w.store(my_hist + b * 8, 0);
            std::uint64_t begin;
            std::uint64_t end;
            key_range(me, begin, end);
            for (std::uint64_t i = begin; i < end; ++i) {
                std::uint64_t key = w.load(keys_va + i * 8);
                std::uint32_t b = bucket_of(key);
                w.compute(cfg.computePerKey);
                std::uint64_t c = w.load(my_hist + b * 8);
                w.store(my_hist + b * 8, c + 1);
            }
        });

        // Phase 2: reduction + prefix sum (parallelized over buckets).
        os.parallelPhase(tiles, [&](os::Worker &w) {
            std::uint32_t me = worker_index(w.tile());
            for (std::uint32_t b = me; b < buckets; b += workers) {
                std::uint64_t sum = 0;
                for (std::uint32_t k = 0; k < workers; ++k) {
                    sum += w.load(hist_va +
                                  (static_cast<Addr>(k) * buckets + b) * 8);
                    w.compute(1);
                }
                w.store(base_va + b * 8, sum);
            }
        });
        os.serialSection(tiles[0], [&](os::Worker &w) {
            std::uint64_t running = 0;
            for (std::uint32_t b = 0; b < buckets; ++b) {
                std::uint64_t count = w.load(base_va + b * 8);
                w.store(base_va + b * 8, running);
                running += count;
                w.compute(1);
            }
        });

        // Per-(worker,bucket) offsets within each worker's staging chunk
        // (prefix sums of the worker's own histogram; register/stack
        // bookkeeping in the real kernel).
        std::vector<std::uint64_t> local_base(
            static_cast<std::size_t>(workers) * buckets);
        for (std::uint32_t k = 0; k < workers; ++k) {
            std::uint64_t running = 0;
            for (std::uint32_t b = 0; b < buckets; ++b) {
                local_base[static_cast<std::size_t>(k) * buckets + b] =
                    running;
                running += mem.load(
                    os.translate(
                        hist_va + (static_cast<Addr>(k) * buckets + b) * 8,
                        0),
                    8);
            }
        }

        // Phase 3a: each worker groups its own keys by bucket into its
        // local staging chunk (local traffic under first touch).
        os.parallelPhase(tiles, [&](os::Worker &w) {
            std::uint32_t me = worker_index(w.tile());
            std::uint64_t begin;
            std::uint64_t end;
            key_range(me, begin, end);
            std::vector<std::uint64_t> cursor(
                local_base.begin() +
                    static_cast<std::ptrdiff_t>(me) * buckets,
                local_base.begin() +
                    static_cast<std::ptrdiff_t>(me + 1) * buckets);
            Addr my_staging = staging_va + begin * 8;
            for (std::uint64_t i = begin; i < end; ++i) {
                std::uint64_t key = w.load(keys_va + i * 8);
                std::uint32_t b = bucket_of(key);
                w.compute(cfg.computePerKey);
                w.store(my_staging + cursor[b] * 8, key);
                ++cursor[b];
            }
        });

        // Phase 3b: the key exchange. Each worker owns a contiguous range
        // of buckets and gathers those buckets' segments from every
        // worker's staging chunk — the all-to-all communication step.
        os.parallelPhase(tiles, [&](os::Worker &w) {
            std::uint32_t me = worker_index(w.tile());
            std::uint32_t b_begin = me * buckets / workers;
            std::uint32_t b_end = (me + 1) * buckets / workers;
            for (std::uint32_t b = b_begin; b < b_end; ++b) {
                std::uint64_t out_pos = mem.load(
                    os.translate(base_va + b * 8, 0), 8);
                for (std::uint32_t k = 0; k < workers; ++k) {
                    std::uint64_t kb_begin;
                    std::uint64_t kb_end;
                    key_range(k, kb_begin, kb_end);
                    std::uint64_t seg =
                        local_base[static_cast<std::size_t>(k) * buckets +
                                   b];
                    std::uint64_t count = mem.load(
                        os.translate(hist_va +
                                         (static_cast<Addr>(k) * buckets +
                                          b) *
                                             8,
                                     0),
                        8);
                    w.compute(2);
                    for (std::uint64_t j = 0; j < count; ++j) {
                        std::uint64_t key = w.load(
                            staging_va + (kb_begin + seg + j) * 8);
                        w.compute(cfg.computePerKey);
                        w.store(out_va + (out_pos + j) * 8, key);
                    }
                    out_pos += count;
                }
            }
        });
    }

    IntSortResult result;
    result.cycles = os.elapsed() - start;

    // Functional verification straight from the backing store.
    result.sorted = true;
    std::uint64_t prev_bucket = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t v = mem.load(os.translate(out_va + i * 8, 0), 8);
        std::uint64_t b = bucket_of(v);
        if (b < prev_bucket) {
            result.sorted = false;
            break;
        }
        prev_bucket = b;
    }

    std::uint64_t remote =
        cs.stats().counterValue("cs.serviced.llcRemote") +
        cs.stats().counterValue("cs.serviced.dramRemote") - snapshot_remote;
    std::uint64_t total =
        cs.stats().counterValue("cs.serviced.llcRemote") +
        cs.stats().counterValue("cs.serviced.dramRemote") +
        cs.stats().counterValue("cs.serviced.llcLocal") +
        cs.stats().counterValue("cs.serviced.dramLocal") - snapshot_total;
    result.remoteFraction =
        total ? static_cast<double>(remote) / static_cast<double>(total)
              : 0.0;
    return result;
}

} // namespace smappic::workload
