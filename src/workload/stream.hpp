/**
 * @file
 * STREAM-style bandwidth workload (McCalpin's kernels: Copy, Scale, Add,
 * Triad). The standard tool for characterizing NUMA memory systems —
 * exactly the kind of study the paper's 48-core prototype is built for:
 * per-thread arrays are placed by the active NUMA policy and the four
 * kernels stream through them, exposing local vs remote bandwidth and
 * inter-node link limits.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/guest_system.hpp"
#include "sim/types.hpp"

namespace smappic::workload
{

/** The four STREAM kernels. */
enum class StreamKernel : std::uint8_t
{
    kCopy,  ///< c = a
    kScale, ///< b = s * c
    kAdd,   ///< c = a + b
    kTriad, ///< a = b + s * c
};

const char *streamKernelName(StreamKernel k);

struct StreamConfig
{
    std::uint64_t elementsPerThread = 1 << 13; ///< 64 KiB per array.
    Cycles computePerElement = 2;              ///< FP op cost.
};

struct StreamResult
{
    Cycles cycles = 0;
    std::uint64_t bytesMoved = 0;
    /** Modeled bandwidth in bytes per cycle across all threads. */
    double bytesPerCycle = 0;
    bool correct = false;
};

/**
 * Runs one kernel with one worker per tile. Arrays are allocated under
 * the guest's NUMA policy (first touch by each worker in an init phase).
 */
StreamResult runStream(os::GuestSystem &os,
                       const std::vector<GlobalTileId> &tiles,
                       StreamKernel kernel, const StreamConfig &cfg);

} // namespace smappic::workload
