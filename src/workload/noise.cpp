#include "workload/noise.hpp"

#include "sim/log.hpp"

namespace smappic::workload
{

const char *
gngModeName(GngMode m)
{
    switch (m) {
      case GngMode::kSoftware: return "SW";
      case GngMode::kFetch1: return "1";
      case GngMode::kFetch2: return "2";
      case GngMode::kFetch4: return "4";
    }
    return "?";
}

namespace
{

std::uint32_t
samplesPerFetch(GngMode m)
{
    switch (m) {
      case GngMode::kFetch2:
        return 2;
      case GngMode::kFetch4:
        return 4;
      default:
        return 1;
    }
}

} // namespace

NoiseResult
runNoiseGenerator(os::GuestSystem &os, GlobalTileId tile, GngMode mode,
                  const NoiseConfig &cfg)
{
    Addr buf = os.vmAlloc(cfg.samples * 2);
    Cycles start = os.elapsed();

    os.serialSection(tile, [&](os::Worker &w) {
        if (mode == GngMode::kSoftware) {
            accel::TauswortheGenerator sw(99);
            for (std::uint64_t i = 0; i < cfg.samples; ++i) {
                // Box-Muller on the core (soft-float log/sqrt/sin).
                w.compute(accel::GngAccelerator::kSoftwareCyclesPerSample);
                w.store(buf + i * 2, sw.next() & 0xffff, 2);
            }
            return;
        }
        std::uint32_t per = samplesPerFetch(mode);
        std::uint32_t bytes = per * 2;
        for (std::uint64_t i = 0; i < cfg.samples; i += per) {
            std::uint64_t packed = w.ncLoad(cfg.deviceBase, bytes);
            for (std::uint32_t k = 0; k < per && i + k < cfg.samples;
                 ++k) {
                w.compute(1); // Unpack shift.
                w.store(buf + (i + k) * 2, (packed >> (16 * k)) & 0xffff,
                        2);
            }
        }
    });

    return NoiseResult{os.elapsed() - start, cfg.samples};
}

NoiseResult
runNoiseApplier(os::GuestSystem &os, GlobalTileId tile, GngMode mode,
                const NoiseConfig &cfg)
{
    Addr seq = os.vmAlloc(cfg.samples);
    // Pre-touch the sequence (it exists before noise is applied).
    NodeId node = tile / os.memorySystem().geometry().tilesPerNode;
    for (std::uint64_t i = 0; i < cfg.samples;
         i += os::GuestSystem::kPageBytes) {
        os.translate(seq + i, node);
    }

    Cycles start = os.elapsed();
    os.serialSection(tile, [&](os::Worker &w) {
        accel::TauswortheGenerator sw(123);
        std::uint32_t per = samplesPerFetch(mode);
        std::uint64_t packed = 0;
        std::uint32_t avail = 0;
        for (std::uint64_t i = 0; i < cfg.samples; ++i) {
            std::uint64_t sample;
            if (mode == GngMode::kSoftware) {
                w.compute(accel::GngAccelerator::kSoftwareCyclesPerSample);
                sample = sw.next() & 0xffff;
            } else {
                if (avail == 0) {
                    packed = w.ncLoad(cfg.deviceBase, per * 2);
                    avail = per;
                }
                sample = packed & 0xffff;
                packed >>= 16;
                --avail;
                w.compute(1);
            }
            // Convert to 8-bit (saturating fixed-point scale) and apply
            // to the sequence element: ~14 ALU ops on the in-order core.
            std::uint64_t v = w.load(seq + i, 1);
            w.compute(14);
            w.store(seq + i, (v + (sample >> 8)) & 0xff, 1);
        }
    });

    return NoiseResult{os.elapsed() - start, cfg.samples};
}

} // namespace smappic::workload
