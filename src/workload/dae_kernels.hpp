/**
 * @file
 * Decoupled Access/Execute kernels used to evaluate MAPLE (paper section
 * 4.3, Fig. 11): SPMV, SPMM, SDHP (sparse hash probe) and BFS — the same
 * benchmark set as the original MAPLE work. Each kernel runs in three
 * modes: single thread, single thread + MAPLE engine, and two threads.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/maple.hpp"
#include "os/guest_system.hpp"
#include "sim/types.hpp"

namespace smappic::workload
{

/** Execution modes from Fig. 11. */
enum class DaeMode : std::uint8_t
{
    kSingleThread,
    kMaple,
    kTwoThreads,
};

/** The four kernels. */
enum class DaeKernel : std::uint8_t
{
    kSpmv,
    kSpmm,
    kSdhp,
    kBfs,
};

/** Workload scale knobs. */
struct DaeConfig
{
    std::uint64_t elements = 20000; ///< Nonzeros / keys / edges.
    std::uint64_t tableSize = 1 << 14; ///< Gather-target elements.
    std::uint64_t seed = 7;
    std::uint32_t denseColumns = 4; ///< SPMM dense width.
};

/** Result of one kernel run. */
struct DaeResult
{
    Cycles cycles = 0;
    std::uint64_t checksum = 0; ///< Mode-independent functional result.
};

std::string daeKernelName(DaeKernel k);
std::string daeModeName(DaeMode m);

/**
 * Runs @p kernel in @p mode.
 * @param tiles Core tiles: tiles[0] is the main core; tiles[1] is the
 *        second core (used only by kTwoThreads).
 * @param engine MAPLE engine (used only by kMaple).
 */
DaeResult runDaeKernel(os::GuestSystem &os, DaeKernel kernel, DaeMode mode,
                       const std::vector<GlobalTileId> &tiles,
                       accel::MapleEngine *engine, const DaeConfig &cfg);

} // namespace smappic::workload
