/**
 * @file
 * Next-free-time queueing servers used by the transaction-level timing
 * model to capture contention at shared resources (DRAM channels, PCIe
 * links, bridge serializers) without full packet simulation.
 *
 * This mirrors the role of the paper's traffic shaper (SMAPPIC section 3.5):
 * a functional path plus a configurable bandwidth/latency performance model.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::sim
{

/**
 * FIFO resource with one or more parallel servers ("ways"). A request
 * arriving at @p now occupies the least-loaded way for its service time;
 * the caller learns both the queueing delay and the departure time.
 *
 * Multiple ways model internally parallel resources (DRAM banks, multiple
 * AXI IDs) and also make the model robust to the slightly out-of-order
 * arrival times produced by the quantum-interleaved phase scheduler: a
 * late-arriving request from a lagging worker picks an idle way instead
 * of queueing behind a logically-later request.
 */
class QueueServer
{
  public:
    /** Result of offering one request to the server. */
    struct Grant
    {
        Cycles start; ///< Cycle at which service began.
        Cycles done;  ///< Cycle at which the resource is released.
        Cycles queued; ///< Cycles spent waiting behind earlier requests.
    };

    explicit QueueServer(std::uint32_t ways = 1) : nextFree_(ways, 0) {}

    /**
     * Offers a request.
     * @param now Arrival time of the request.
     * @param service Cycles of occupancy the request needs.
     */
    Grant
    offer(Cycles now, Cycles service)
    {
        // Pick the way that frees up first.
        std::size_t best = 0;
        for (std::size_t w = 1; w < nextFree_.size(); ++w) {
            if (nextFree_[w] < nextFree_[best])
                best = w;
        }
        Cycles start = std::max(now, nextFree_[best]);
        nextFree_[best] = start + service;
        busy_ += service;
        requests_ += 1;
        queuedTotal_ += start - now;
        return Grant{start, nextFree_[best], start - now};
    }

    /** Earliest cycle a new arrival could begin service. */
    Cycles
    nextFree() const
    {
        Cycles best = nextFree_[0];
        for (Cycles v : nextFree_)
            best = std::min(best, v);
        return best;
    }

    /** Total cycles of occupancy granted so far. */
    Cycles busyCycles() const { return busy_; }

    /** Number of requests served. */
    std::uint64_t requests() const { return requests_; }

    /** Aggregate queueing delay across all requests. */
    Cycles queuedCycles() const { return queuedTotal_; }

    void
    reset()
    {
        std::fill(nextFree_.begin(), nextFree_.end(), 0);
        busy_ = 0;
        requests_ = 0;
        queuedTotal_ = 0;
    }

    std::uint32_t
    ways() const
    {
        return static_cast<std::uint32_t>(nextFree_.size());
    }

    /** Per-way next-free times (checkpointing). */
    const std::vector<Cycles> &lanes() const { return nextFree_; }

    /** Restores state captured with lanes()/the counters. @p lanes must
     *  match the server's way count. */
    void
    restore(std::vector<Cycles> lanes, Cycles busy,
            std::uint64_t requests, Cycles queued)
    {
        nextFree_ = std::move(lanes);
        busy_ = busy;
        requests_ = requests;
        queuedTotal_ = queued;
    }

  private:
    std::vector<Cycles> nextFree_;
    Cycles busy_ = 0;
    std::uint64_t requests_ = 0;
    Cycles queuedTotal_ = 0;
};

/**
 * Bandwidth/latency shaper: models a pipe with fixed propagation latency and
 * a bytes-per-cycle bandwidth cap. Matches the paper's configurable
 * inter-node/memory traffic shaper.
 */
class TrafficShaper
{
  public:
    /**
     * @param latency One-way propagation latency in cycles.
     * @param bytes_per_cycle Bandwidth cap; 0 disables the cap.
     * @param ways Transfers that may serialize concurrently (pipelined
     *        TLPs/bursts in flight); aggregate bandwidth is
     *        ways * bytes_per_cycle only transiently — sustained streams
     *        still queue once every way is busy.
     */
    TrafficShaper(Cycles latency, double bytes_per_cycle,
                  std::uint32_t ways = 1)
        : latency_(latency), bytesPerCycle_(bytes_per_cycle), server_(ways)
    {
    }

    /**
     * Sends @p bytes at @p now.
     * @return Cycle at which the last byte arrives at the far end.
     */
    Cycles
    send(Cycles now, std::uint64_t bytes)
    {
        Cycles serialization = 0;
        if (bytesPerCycle_ > 0.0) {
            serialization = static_cast<Cycles>(
                static_cast<double>(bytes) / bytesPerCycle_ + 0.999999);
            if (serialization == 0)
                serialization = 1;
        }
        auto grant = server_.offer(now, serialization);
        bytesSent_ += bytes;
        return grant.done + latency_;
    }

    Cycles latency() const { return latency_; }
    void setLatency(Cycles latency) { latency_ = latency; }
    double bytesPerCycle() const { return bytesPerCycle_; }
    void setBytesPerCycle(double bpc) { bytesPerCycle_ = bpc; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    const QueueServer &server() const { return server_; }
    QueueServer &server() { return server_; }
    void setBytesSent(std::uint64_t bytes) { bytesSent_ = bytes; }

    void
    reset()
    {
        server_.reset();
        bytesSent_ = 0;
    }

  private:
    Cycles latency_;
    double bytesPerCycle_;
    QueueServer server_;
    std::uint64_t bytesSent_ = 0;
};

} // namespace smappic::sim
