#include "sim/event_queue.hpp"

#include "sim/log.hpp"

namespace smappic::sim
{

void
EventQueue::scheduleAt(Cycles when, EventFn fn)
{
    panicIf(when < now_, "event scheduled in the past");
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

std::uint64_t
EventQueue::run(Cycles limit)
{
    Cycles deadline = (limit == ~Cycles{0}) ? ~Cycles{0} : now_ + limit;
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        // priority_queue exposes only a const top(); the move is safe
        // because the entry is popped immediately afterwards.
        auto &top = const_cast<Entry &>(heap_.top());
        now_ = top.when;
        EventFn fn = std::move(top.fn);
        heap_.pop();
        fn();
        ++executed;
    }
    return executed;
}

std::uint64_t
EventQueue::runUntil(Cycles until)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        auto &top = const_cast<Entry &>(heap_.top());
        now_ = top.when;
        EventFn fn = std::move(top.fn);
        heap_.pop();
        fn();
        ++executed;
    }
    if (now_ < until)
        now_ = until;
    return executed;
}

void
EventQueue::reset()
{
    heap_ = {};
    now_ = 0;
    nextSeq_ = 0;
}

void
EventQueue::jumpTo(Cycles now)
{
    panicIf(!heap_.empty(),
            "jumpTo with pending events would orphan their closures");
    now_ = now;
}

} // namespace smappic::sim
