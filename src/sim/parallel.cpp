#include "sim/parallel.hpp"

#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/log.hpp"

namespace smappic::sim
{

thread_local NodeId detail::tlsActingNode = kNoNode;

ActingNodeScope::ActingNodeScope(NodeId node)
    : prev_(detail::tlsActingNode)
{
    detail::tlsActingNode = node;
}

ActingNodeScope::~ActingNodeScope()
{
    detail::tlsActingNode = prev_;
}

void
MailboxRouter::configure(std::uint32_t nodes)
{
    lanes_.assign(nodes, {});
}

void
MailboxRouter::post(std::function<void()> fn)
{
    NodeId src = currentNode();
    panicIf(src == kNoNode,
            "MailboxRouter::post outside a node phase (serial-context "
            "interactions should run directly)");
    panicIf(src >= lanes_.size(), "MailboxRouter lane out of range");
    lanes_[src].push_back(std::move(fn));
}

std::uint64_t
MailboxRouter::drain()
{
    std::uint64_t ran = 0;
    // Ascending source node, then post order: independent of worker
    // interleaving because each lane has a single writer.
    for (auto &lane : lanes_) {
        for (auto &fn : lane) {
            fn();
            ++ran;
        }
        lane.clear();
    }
    delivered_ += ran;
    return ran;
}

std::uint64_t
MailboxRouter::pending() const
{
    std::uint64_t n = 0;
    for (const auto &lane : lanes_)
        n += lane.size();
    return n;
}

ParallelExecutor::ParallelExecutor(std::uint32_t workers)
    : workers_(workers == 0 ? 1 : workers)
{
}

void
ParallelExecutor::run(std::uint32_t groups, const GroupFn &group_fn,
                      const BarrierFn &barrier)
{
    if (groups == 0)
        return;
    std::uint32_t workers = std::min(workers_, groups);

    if (workers <= 1) {
        std::uint64_t epoch = 0;
        for (;;) {
            for (std::uint32_t g = 0; g < groups; ++g)
                group_fn(g);
            if (!barrier(epoch++))
                return;
        }
    }

    std::uint64_t epoch = 0;
    std::atomic<bool> keep_going{true};
    std::exception_ptr error;
    std::mutex error_mu;

    auto stash = [&](std::exception_ptr e) {
        std::lock_guard<std::mutex> lk(error_mu);
        if (!error)
            error = e;
        keep_going.store(false, std::memory_order_relaxed);
    };

    // The completion callback runs on exactly one worker with every other
    // worker parked in arrive_and_wait: the serial section.
    std::barrier sync(workers, [&]() noexcept {
        if (!keep_going.load(std::memory_order_relaxed))
            return;
        try {
            if (!barrier(epoch++))
                keep_going.store(false, std::memory_order_relaxed);
        } catch (...) {
            stash(std::current_exception());
        }
    });

    auto worker = [&](std::uint32_t w) {
        for (;;) {
            if (keep_going.load(std::memory_order_relaxed)) {
                try {
                    for (std::uint32_t g = w; g < groups; g += workers)
                        group_fn(g);
                } catch (...) {
                    stash(std::current_exception());
                }
            }
            sync.arrive_and_wait();
            if (!keep_going.load(std::memory_order_relaxed))
                return;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w)
        pool.emplace_back(worker, w);
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace smappic::sim
