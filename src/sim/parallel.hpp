/**
 * @file
 * Conservative parallel execution harness for multi-node prototypes.
 *
 * SMAPPIC's scalability story rests on nodes running concurrently and
 * interacting only through the ~1250 ns PCIe round trip (paper Fig. 8).
 * That latency is *lookahead* in the PDES sense: whatever one node does
 * cannot affect another sooner than the PCIe one-way delay, so each node
 * may simulate a quantum of up to that many cycles without looking at its
 * peers. The harness here exploits it:
 *
 *  - ParallelExecutor runs per-node work functions on a worker pool in
 *    epochs separated by a barrier; the barrier callback runs serially.
 *  - MailboxRouter collects cross-node interactions produced inside a
 *    node phase and replays them at the next barrier in a fixed
 *    (source node, post order) order, making delivery independent of how
 *    worker threads interleave.
 *  - currentNode()/ActingNodeScope tag the running thread with the node
 *    whose state it is allowed to touch, so shared components can tell a
 *    node phase from serial (setup/barrier) context.
 *
 * Determinism contract: for workloads whose mid-quantum footprint is
 * node-disjoint (cross-node interaction flows through the mailbox or the
 * event queue), results are bit-identical for any worker count, because
 * node phases touch disjoint state and every serializing step (mailbox
 * drain, event pump, stat-shard merge) runs in a fixed order.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace smappic::sim
{

/** Sentinel: the calling thread is not executing any node's phase. */
inline constexpr NodeId kNoNode = ~NodeId{0};

namespace detail
{
extern thread_local NodeId tlsActingNode;
} // namespace detail

/** Node whose phase the calling thread is executing, or kNoNode.
 *  Inline: trace points query this on their hot path. */
inline NodeId
currentNode()
{
    return detail::tlsActingNode;
}

/** RAII tag marking the calling thread as acting for one node. */
class ActingNodeScope
{
  public:
    explicit ActingNodeScope(NodeId node);
    ~ActingNodeScope();

    ActingNodeScope(const ActingNodeScope &) = delete;
    ActingNodeScope &operator=(const ActingNodeScope &) = delete;

  private:
    NodeId prev_;
};

/** Parallel-engine knob carried by PrototypeConfig. */
struct ParallelConfig
{
    /** Worker threads. 1 with quantum 0 keeps the sequential engine. */
    std::uint32_t threads = 1;
    /** Epoch length in cycles; 0 picks the PCIe one-way lookahead. Any
     *  non-zero value (or threads > 1) selects the phased engine. */
    Cycles quantum = 0;

    bool active() const { return threads > 1 || quantum > 0; }
};

/**
 * Deferred cross-node interactions, one lane per source node. A node
 * phase posts with post() (single writer: the worker acting for that
 * node); the barrier drains every lane in ascending source-node order,
 * then post order within a lane. The drain order is therefore a pure
 * function of what each node produced, never of thread interleaving.
 */
class MailboxRouter
{
  public:
    /** Sizes the lane table; call once before the first phase. */
    void configure(std::uint32_t nodes);

    /**
     * Defers @p fn to the next barrier. Must be called from a node phase
     * (currentNode() != kNoNode); the acting node picks the lane.
     */
    void post(std::function<void()> fn);

    /** Runs and discards all deferred work. @return Entries executed. */
    std::uint64_t drain();

    /** Entries currently deferred. */
    std::uint64_t pending() const;

    /** Lifetime count of entries drained. */
    std::uint64_t delivered() const { return delivered_; }

  private:
    std::vector<std::vector<std::function<void()>>> lanes_;
    std::uint64_t delivered_ = 0;
};

/**
 * Epoch-stepped worker pool. run() repeatedly executes one epoch: every
 * group (node) is advanced by groupFn — groups are sharded round-robin
 * over the workers, each group always on the same worker — then the
 * barrier callback runs exactly once, serially, with every worker
 * quiescent. Epochs continue while the barrier returns true. With one
 * worker no threads are spawned and the loop is a plain function-call
 * sequence, so a single-threaded run has zero synchronization overhead.
 */
class ParallelExecutor
{
  public:
    using GroupFn = std::function<void(std::uint32_t group)>;
    using BarrierFn = std::function<bool(std::uint64_t epoch)>;

    explicit ParallelExecutor(std::uint32_t workers);

    std::uint32_t workers() const { return workers_; }

    /** Runs epochs over @p groups groups until @p barrier returns false.
     *  Exceptions from groupFn/barrier end the run and are rethrown. */
    void run(std::uint32_t groups, const GroupFn &group_fn,
             const BarrierFn &barrier);

  private:
    std::uint32_t workers_;
};

} // namespace smappic::sim
