/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal distinction:
 * panic() is an internal invariant violation, fatal() is a user error.
 */

#pragma once

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace smappic
{

/** Thrown by panic(): the simulator itself violated an invariant. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user supplied an impossible configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Reports an internal simulator bug; never returns. */
[[noreturn]] void panic(const std::string &msg);

/** Reports an unrecoverable user/configuration error; never returns. */
[[noreturn]] void fatal(const std::string &msg);

/** Prints a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Prints an informational message to stderr. */
void inform(const std::string &msg);

/** Fails with panic() when @p cond is true. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** Fails with fatal() when @p cond is true. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace smappic
