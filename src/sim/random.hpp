/**
 * @file
 * Deterministic pseudo-random number generation (xoroshiro128++).
 *
 * Every stochastic decision in the simulator draws from a seeded instance of
 * this generator so results are bit-reproducible across runs and hosts.
 */

#pragma once

#include <cstdint>
#include <utility>

namespace smappic::sim
{

/** xoroshiro128++ generator (Blackman & Vigna), small and very fast. */
class Xoroshiro
{
  public:
    /** Seeds the generator; a splitmix64 pass whitens the raw seed. */
    explicit Xoroshiro(std::uint64_t seed = 0x5eedULL)
    {
        std::uint64_t x = seed;
        s0_ = splitmix(x);
        s1_ = splitmix(x);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Returns the next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t a = s0_;
        std::uint64_t b = s1_;
        std::uint64_t result = rotl(a + b, 17) + a;
        b ^= a;
        s0_ = rotl(a, 49) ^ b ^ (b << 21);
        s1_ = rotl(b, 28);
        return result;
    }

    /** Returns a uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for simulator use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Returns a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Returns true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Raw generator state, for checkpointing mid-stream. */
    std::pair<std::uint64_t, std::uint64_t>
    state() const
    {
        return {s0_, s1_};
    }

    /** Restores a state captured with state(). All-zero is illegal for
     *  xoroshiro; such input is nudged to the nonzero fixed point. */
    void
    setState(std::uint64_t s0, std::uint64_t s1)
    {
        s0_ = s0;
        s1_ = s1;
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    static std::uint64_t
    splitmix(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace smappic::sim
