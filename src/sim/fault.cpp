#include "sim/fault.hpp"

#include "sim/log.hpp"

namespace smappic::sim
{

namespace
{

/** FNV-1a over the site name; mixes the plan seed per site. */
std::uint64_t
hashSite(std::string_view site)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : site) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len, std::uint32_t seed)
{
    // Bitwise reflected CRC-32; table-free keeps it header-light and the
    // payloads here are tens of bytes.
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

FaultPlan &
FaultPlan::add(FaultRule rule)
{
    fatalIf(rule.probability < 0.0 || rule.probability > 1.0,
            "fault rule probability must be in [0, 1]");
    fatalIf(rule.site.empty(), "fault rule needs a site prefix");
    rules.push_back(std::move(rule));
    return *this;
}

FaultPlan &
FaultPlan::drop(std::string site, double p)
{
    return add(FaultRule{std::move(site), FaultKind::kDrop, p, 0, 0,
                         ~std::uint64_t{0}});
}

FaultPlan &
FaultPlan::corrupt(std::string site, double p)
{
    return add(FaultRule{std::move(site), FaultKind::kCorrupt, p, 0, 0,
                         ~std::uint64_t{0}});
}

FaultPlan &
FaultPlan::delay(std::string site, double p, Cycles cycles)
{
    return add(FaultRule{std::move(site), FaultKind::kDelay, p, cycles, 0,
                         ~std::uint64_t{0}});
}

FaultPlan &
FaultPlan::slvErr(std::string site, double p, std::uint64_t first_event,
                  std::uint64_t last_event)
{
    return add(FaultRule{std::move(site), FaultKind::kSlvErr, p, 0,
                         first_event, last_event});
}

FaultInjector::FaultInjector(FaultPlan plan, StatRegistry *stats)
    : plan_(std::move(plan)), stats_(stats)
{
    for (const FaultRule &r : plan_.rules) {
        fatalIf(r.lastEvent < r.firstEvent,
                "fault rule window for '" + r.site + "' is empty");
    }
}

FaultInjector::SiteState &
FaultInjector::siteState(std::string_view site)
{
    auto it = sites_.find(site);
    if (it == sites_.end()) {
        it = sites_
                 .emplace(std::string(site),
                          SiteState(plan_.seed ^ hashSite(site)))
                 .first;
    }
    return it->second;
}

std::uint64_t
FaultInjector::siteEvents(std::string_view site) const
{
    auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.events;
}

void
FaultInjector::count(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kDrop:
        ++drops_;
        if (stats_)
            stats_->counter("fault.drop").increment();
        break;
      case FaultKind::kCorrupt:
        ++corruptions_;
        if (stats_)
            stats_->counter("fault.corrupt").increment();
        break;
      case FaultKind::kDelay:
        ++delays_;
        if (stats_)
            stats_->counter("fault.delay").increment();
        break;
      case FaultKind::kSlvErr:
        ++slvErrs_;
        if (stats_)
            stats_->counter("fault.slverr").increment();
        break;
    }
}

FaultDecision
FaultInjector::decide(std::string_view site)
{
    FaultDecision d;
    if (plan_.empty())
        return d;

    SiteState &state = siteState(site);
    std::uint64_t event = state.events++;
    for (const FaultRule &r : plan_.rules) {
        if (site.substr(0, r.site.size()) != r.site)
            continue;
        if (event < r.firstEvent || event > r.lastEvent)
            continue;
        if (!state.rng.chance(r.probability))
            continue;
        count(r.kind);
        switch (r.kind) {
          case FaultKind::kDrop:
            d.drop = true;
            break;
          case FaultKind::kCorrupt:
            d.corrupt = true;
            break;
          case FaultKind::kDelay:
            d.extraDelay += r.delay;
            break;
          case FaultKind::kSlvErr:
            d.slvErr = true;
            break;
        }
    }
    return d;
}

void
FaultInjector::forEachSite(
    const std::function<void(const std::string &, std::uint64_t,
                             std::uint64_t, std::uint64_t)> &fn) const
{
    for (const auto &[name, state] : sites_) {
        auto [s0, s1] = state.rng.state();
        fn(name, s0, s1, state.events);
    }
}

void
FaultInjector::restoreSite(const std::string &site, std::uint64_t rng_s0,
                           std::uint64_t rng_s1, std::uint64_t events)
{
    SiteState &state = siteState(site);
    state.rng.setState(rng_s0, rng_s1);
    state.events = events;
}

void
FaultInjector::corruptBytes(std::string_view site, std::uint8_t *bytes,
                            std::size_t len)
{
    if (len == 0)
        return;
    SiteState &state = siteState(site);
    std::uint64_t bit = state.rng.below(len * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

} // namespace smappic::sim
