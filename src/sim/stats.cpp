#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/log.hpp"

namespace smappic::sim
{

Histogram::Histogram(std::size_t buckets, double width)
    : counts_(buckets, 0), width_(width)
{
    fatalIf(buckets == 0, "histogram needs at least one bucket");
    fatalIf(width <= 0.0, "histogram bucket width must be positive");
}

void
Histogram::sample(double v)
{
    summary_.sample(v);
    if (v < 0.0) {
        // Dedicated underflow bin: folding negatives into bucket 0 would
        // make percentile() report them as positive values in [0, width).
        underflow_ += 1;
        return;
    }
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= counts_.size())
        overflow_ += 1;
    else
        counts_[idx] += 1;
}

double
Histogram::percentile(double p) const
{
    p = std::clamp(p, 0.0, 1.0);
    std::uint64_t total = summary_.count();
    if (total == 0)
        return 0.0;
    auto threshold =
        static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total)));
    threshold = std::max<std::uint64_t>(threshold, 1);
    std::uint64_t seen = underflow_;
    if (seen >= threshold)
        return summary_.min();
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= threshold)
            return (static_cast<double>(i) + 1.0) * width_;
    }
    return summary_.max();
}

void
Histogram::merge(const Histogram &o)
{
    panicIf(counts_.size() != o.counts_.size() || width_ != o.width_,
            "merging histograms of different shapes");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += o.counts_[i];
    overflow_ += o.overflow_;
    underflow_ += o.underflow_;
    summary_.merge(o.summary_);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    underflow_ = 0;
    summary_.reset();
}

thread_local StatRegistry *StatRegistry::tlsRoot_ = nullptr;
thread_local StatRegistry *StatRegistry::tlsShard_ = nullptr;

StatRegistry::Redirect::Redirect(StatRegistry *root, StatRegistry *shard)
    : prevRoot_(tlsRoot_), prevShard_(tlsShard_)
{
    tlsRoot_ = root;
    tlsShard_ = shard;
}

StatRegistry::Redirect::~Redirect()
{
    tlsRoot_ = prevRoot_;
    tlsShard_ = prevShard_;
}

void
StatRegistry::mergeFrom(const StatRegistry &o)
{
    for (const auto &[name, c] : o.counters_)
        counters_[name].increment(c.value());
    for (const auto &[name, s] : o.summaries_)
        summaries_[name].merge(s);
    for (const auto &[name, h] : o.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end())
            histograms_.emplace(name, h);
        else
            it->second.merge(h);
    }
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, s] : summaries_) {
        os << name << ".mean " << s.mean() << "\n";
        os << name << ".count " << s.count() << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        os << name << ".mean " << h.summary().mean() << "\n";
        os << name << ".p50 " << h.percentile(0.5) << "\n";
        os << name << ".p99 " << h.percentile(0.99) << "\n";
        os << name << ".underflow " << h.underflow() << "\n";
        os << name << ".overflow " << h.overflow() << "\n";
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    auto key = [&](const std::string &name) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":";
    };
    // Counters are exact integers: routing them through a double with the
    // default ostream precision prints values above ~1e6 as "1.23457e+06",
    // which both loses digits and breaks strict JSON consumers.
    auto emitInt = [&](const std::string &name, std::uint64_t value) {
        key(name);
        os << value;
    };
    // Floats print with max_digits10 (%.17g) so values round-trip exactly.
    auto emitFloat = [&](const std::string &name, double value) {
        key(name);
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        os << buf;
    };
    for (const auto &[name, c] : counters_)
        emitInt(name, c.value());
    for (const auto &[name, s] : summaries_) {
        emitFloat(name + ".mean", s.mean());
        emitInt(name + ".count", s.count());
        emitFloat(name + ".min", s.min());
        emitFloat(name + ".max", s.max());
    }
    for (const auto &[name, h] : histograms_) {
        emitFloat(name + ".mean", h.summary().mean());
        emitFloat(name + ".p50", h.percentile(0.5));
        emitFloat(name + ".p99", h.percentile(0.99));
        emitInt(name + ".underflow", h.underflow());
        emitInt(name + ".overflow", h.overflow());
    }
    os << "}";
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, s] : summaries_)
        s.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

} // namespace smappic::sim
