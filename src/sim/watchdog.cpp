#include "sim/watchdog.hpp"

#include <algorithm>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"

namespace smappic::sim
{

Watchdog::Watchdog(const WatchdogConfig &cfg, std::uint32_t nodes,
                   StatRegistry *stats)
    : cfg_(cfg), stats_(stats), lastCommitted_(nodes, 0),
      lastProgress_(nodes, 0)
{
}

Watchdog::Verdict
Watchdog::observe(Cycles now, const std::vector<std::uint64_t> &committed,
                  const std::vector<bool> &live)
{
    Verdict verdict;
    if (!cfg_.enabled())
        return verdict;
    panicIf(committed.size() != lastCommitted_.size() ||
                live.size() != lastCommitted_.size(),
            "watchdog observed a different node count than it was built for");

    if (!primed_) {
        // First barrier: establish the baseline, never fire.
        primed_ = true;
        lastCommitted_ = committed;
        for (auto &mark : lastProgress_)
            mark = now;
        return verdict;
    }

    for (std::size_t n = 0; n < committed.size(); ++n) {
        if (!live[n] || committed[n] != lastCommitted_[n]) {
            // Done nodes can't stall; committing nodes re-arm their
            // window.
            lastCommitted_[n] = committed[n];
            lastProgress_[n] = now;
            continue;
        }
        if (now - lastProgress_[n] >= cfg_.stallCycles) {
            verdict.stallDetected = true;
            verdict.stalledNodes.push_back(static_cast<std::uint32_t>(n));
            // Rebase so a persistent wedge fires once per window, not
            // once per barrier.
            lastProgress_[n] = now;
        }
    }

    if (verdict.stallDetected) {
        stalls_ += verdict.stalledNodes.size();
        if (stats_) {
            stats_->counter("watchdog.stallsDetected")
                .increment(verdict.stalledNodes.size());
        }
    }
    return verdict;
}

void
Watchdog::rebase()
{
    primed_ = false;
}

Cycles
Watchdog::nextDeadline() const
{
    if (!cfg_.enabled() || !primed_)
        return kNoDeadline;
    Cycles next = kNoDeadline;
    for (Cycles mark : lastProgress_)
        next = std::min(next, mark + cfg_.stallCycles);
    return next;
}

} // namespace smappic::sim
