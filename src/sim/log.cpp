#include "sim/log.hpp"

#include <cstdio>
#include <vector>

namespace smappic
{

std::string
strfmt(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace smappic
