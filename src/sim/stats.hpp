/**
 * @file
 * Lightweight statistics package: named counters, scalar samples and
 * histograms that components register into a StatRegistry and that benches
 * and tests read back after a run.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace smappic::sim
{

/** Monotonic event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Streaming summary of a scalar sample set (min/max/mean/stddev). */
class Summary
{
  public:
    /** Records one observation. */
    void
    sample(double v)
    {
        count_ += 1;
        sum_ += v;
        sumSq_ += v * v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Folds another summary's observations into this one. */
    void
    merge(const Summary &o)
    {
        count_ += o.count_;
        sum_ += o.sum_;
        sumSq_ += o.sumSq_;
        if (o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    // Raw accumulator access for bit-exact checkpointing: the empty-set
    // sentinels (+-inf) and sumSq must round-trip unchanged, which the
    // derived accessors above cannot provide.
    double sumSquares() const { return sumSq_; }
    double rawMin() const { return min_; }
    double rawMax() const { return max_; }

    /** Restores raw accumulator state captured with the accessors. */
    void
    restore(std::uint64_t count, double sum, double sum_sq, double raw_min,
            double raw_max)
    {
        count_ = count;
        sum_ = sum;
        sumSq_ = sum_sq;
        min_ = raw_min;
        max_ = raw_max;
    }

    /** Population variance of the observations. */
    double
    variance() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        return sumSq_ / count_ - m * m;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bucket histogram over [0, buckets * width). */
class Histogram
{
  public:
    /**
     * @param buckets Number of finite buckets.
     * @param width Width of each bucket; samples beyond the last bucket are
     *        accumulated in an overflow bin.
     */
    explicit Histogram(std::size_t buckets = 32, double width = 1.0);

    void sample(double v);

    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    /** Samples below zero (reported by percentile() as summary().min()). */
    std::uint64_t underflow() const { return underflow_; }
    std::size_t buckets() const { return counts_.size(); }
    double bucketWidth() const { return width_; }
    const Summary &summary() const { return summary_; }

    /** Returns the smallest value v with CDF(v) >= p, bucket-quantized. */
    double percentile(double p) const;

    /** Folds another histogram (same shape) into this one. */
    void merge(const Histogram &o);

    void reset();

    /** Restores bucket/summary state (checkpointing). @p counts must
     *  match the histogram's bucket count. */
    void
    restore(std::vector<std::uint64_t> counts, std::uint64_t overflow,
            std::uint64_t underflow, const Summary &summary)
    {
        counts_ = std::move(counts);
        overflow_ = overflow;
        underflow_ = underflow;
        summary_ = summary;
    }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t underflow_ = 0;
    double width_;
    Summary summary_;
};

/**
 * Flat name -> stat registry. Components register their stats under
 * hierarchical dotted names ("node0.tile3.bpc.misses"); benches read them
 * back or dump the whole registry.
 *
 * Parallel node phases write through per-node shard registries bound with
 * Redirect: while a Redirect(root, shard) is live on a thread, lookups on
 * *root* from that thread land in *shard* instead. Components keep their
 * plain StatRegistry pointer and stay oblivious; the phased engine merges
 * the shards back (mergeFrom) in ascending node order at the end of a run,
 * so merged floating-point accumulation order — and therefore every dumped
 * value — is independent of the worker count.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name)
    {
        return active().counters_[name];
    }
    Summary &summaryStat(const std::string &name)
    {
        return active().summaries_[name];
    }

    Histogram &
    histogram(const std::string &name, std::size_t buckets = 32,
              double width = 1.0)
    {
        StatRegistry &reg = active();
        auto it = reg.histograms_.find(name);
        if (it == reg.histograms_.end()) {
            it = reg.histograms_.emplace(name, Histogram(buckets, width))
                     .first;
        }
        return it->second;
    }

    /**
     * RAII thread-local redirection: while alive, writes through @p root
     * on this thread are recorded in @p shard. Nests (the previous
     * binding is restored on destruction).
     */
    class Redirect
    {
      public:
        Redirect(StatRegistry *root, StatRegistry *shard);
        ~Redirect();

        Redirect(const Redirect &) = delete;
        Redirect &operator=(const Redirect &) = delete;

      private:
        StatRegistry *prevRoot_;
        StatRegistry *prevShard_;
    };

    /** Folds every stat of @p o into this registry (counters add,
     *  summaries/histograms merge). */
    void mergeFrom(const StatRegistry &o);

    /** Returns the counter's value, or 0 if never registered. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Writes all stats in "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Writes all stats as a flat JSON object (for tooling). */
    void dumpJson(std::ostream &os) const;

    /** Zeroes every registered stat, keeping registrations. */
    void resetAll();

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Summary> &summaries() const
    {
        return summaries_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    /** Shard bound to this registry on this thread, or *this. */
    StatRegistry &
    active()
    {
        return (this == tlsRoot_ && tlsShard_) ? *tlsShard_ : *this;
    }

    static thread_local StatRegistry *tlsRoot_;
    static thread_local StatRegistry *tlsShard_;

    std::map<std::string, Counter> counters_;
    std::map<std::string, Summary> summaries_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace smappic::sim
