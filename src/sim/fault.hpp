/**
 * @file
 * Platform-wide fault injection.
 *
 * Cloud FPGA deployments see transient faults an on-prem rig never does:
 * PCIe TLPs dropped or delayed by the hypervisor, shell DMA bit errors,
 * peer instances rebooting mid-run. A FaultPlan describes such faults
 * declaratively — per injection *site*, a seeded probability and an
 * optional event-count window for each fault kind — and a FaultInjector
 * evaluates the plan at hooks wired through the PCIe fabric, the
 * inter-node bridge, the AXI crossbars and the DRAM path.
 *
 * Determinism: every site draws from its own xoroshiro stream seeded from
 * (plan seed, site name), so decisions at one site are independent of how
 * other sites interleave and a given (plan, traffic) pair is
 * bit-reproducible.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::sim
{

/** CRC-32 (IEEE 802.3, reflected) over @p len bytes of @p data. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len,
                    std::uint32_t seed = 0);

/** Kinds of transient fault the injector can produce. */
enum class FaultKind : std::uint8_t
{
    kDrop = 0,    ///< Transaction silently lost in flight.
    kCorrupt = 1, ///< Single-bit flip in the payload.
    kDelay = 2,   ///< Extra in-flight latency.
    kSlvErr = 3,  ///< Target answers SLVERR without doing the work.
};

/** One injection rule: at sites matching @p site, fire @p kind. */
struct FaultRule
{
    std::string site;       ///< Prefix-matched against hook site names.
    FaultKind kind = FaultKind::kDrop;
    double probability = 0; ///< Per-event firing probability in [0, 1].
    Cycles delay = 0;       ///< Extra cycles (kDelay only).
    /** Inclusive [first, last] window over the site's event counter;
     *  events outside it never fire. probability 1 inside a window makes
     *  a deterministic "stuck" fault (e.g. stuck-SLVERR). */
    std::uint64_t firstEvent = 0;
    std::uint64_t lastEvent = ~std::uint64_t{0};
};

/** Declarative, seeded fault schedule. An empty plan injects nothing. */
struct FaultPlan
{
    std::uint64_t seed = 1;
    std::vector<FaultRule> rules;

    bool empty() const { return rules.empty(); }

    FaultPlan &add(FaultRule rule);
    /** Convenience builders; all return *this for chaining. */
    FaultPlan &drop(std::string site, double p);
    FaultPlan &corrupt(std::string site, double p);
    FaultPlan &delay(std::string site, double p, Cycles cycles);
    FaultPlan &slvErr(std::string site, double p,
                      std::uint64_t first_event = 0,
                      std::uint64_t last_event = ~std::uint64_t{0});
};

/** What the injector decided for one event at one site. */
struct FaultDecision
{
    bool drop = false;
    bool corrupt = false;
    bool slvErr = false;
    Cycles extraDelay = 0;

    /** True when any fault fires. */
    explicit operator bool() const
    {
        return drop || corrupt || slvErr || extraDelay != 0;
    }
};

/**
 * Evaluates a FaultPlan at named injection sites. Components hold a
 * nullable FaultInjector* and skip every hook when it is null, so a
 * fault-free build pays one pointer test per hook.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan, StatRegistry *stats = nullptr);

    /** True when at least one rule exists. */
    bool enabled() const { return !plan_.empty(); }

    /**
     * Rolls the dice for the next event at @p site. Advances the site's
     * event counter; rules whose site is a prefix of @p site and whose
     * window covers the event may fire. Fault counts are recorded under
     * "fault.drop" / "fault.corrupt" / "fault.delay" / "fault.slverr".
     */
    FaultDecision decide(std::string_view site);

    /** Flips one uniformly chosen bit of @p bytes (site-seeded). */
    void corruptBytes(std::string_view site, std::uint8_t *bytes,
                      std::size_t len);

    std::uint64_t dropsInjected() const { return drops_; }
    std::uint64_t corruptionsInjected() const { return corruptions_; }
    std::uint64_t delaysInjected() const { return delays_; }
    std::uint64_t slvErrsInjected() const { return slvErrs_; }

    /** Events seen so far at @p site (0 if never queried). */
    std::uint64_t siteEvents(std::string_view site) const;

    /** The fault plan this injector evaluates. */
    const FaultPlan &plan() const { return plan_; }

    /** Invokes @p fn(site, rng_s0, rng_s1, events) for every site state,
     *  in site-name order (checkpointing). */
    void forEachSite(
        const std::function<void(const std::string &, std::uint64_t,
                                 std::uint64_t, std::uint64_t)> &fn) const;

    /** Restores (creating if needed) one site's RNG stream + counter. */
    void restoreSite(const std::string &site, std::uint64_t rng_s0,
                     std::uint64_t rng_s1, std::uint64_t events);

    /** Forgets every site state (prelude to a full restoreSite sweep, so
     *  sites first touched after the checkpoint don't survive it). */
    void resetSites() { sites_.clear(); }

    /** Restores the aggregate injection counters. */
    void
    restoreCounters(std::uint64_t drops, std::uint64_t corruptions,
                    std::uint64_t delays, std::uint64_t slv_errs)
    {
        drops_ = drops;
        corruptions_ = corruptions;
        delays_ = delays;
        slvErrs_ = slv_errs;
    }

  private:
    struct SiteState
    {
        Xoroshiro rng;
        std::uint64_t events = 0;

        explicit SiteState(std::uint64_t seed) : rng(seed) {}
    };

    SiteState &siteState(std::string_view site);
    void count(FaultKind kind);

    FaultPlan plan_;
    StatRegistry *stats_;
    std::map<std::string, SiteState, std::less<>> sites_;

    std::uint64_t drops_ = 0;
    std::uint64_t corruptions_ = 0;
    std::uint64_t delays_ = 0;
    std::uint64_t slvErrs_ = 0;
};

} // namespace smappic::sim
