/**
 * @file
 * Fundamental scalar types shared by every SMAPPIC module.
 */

#pragma once

#include <cstdint>

namespace smappic
{

/** Physical/simulated byte address inside a prototype. */
using Addr = std::uint64_t;

/** Simulated time measured in target clock cycles. */
using Cycles = std::uint64_t;

/** Simulated time measured in picoseconds (used by cross-clock links). */
using Picos = std::uint64_t;

/** Identifier of a node (one chip/die of the target system). */
using NodeId = std::uint32_t;

/** Identifier of a tile within a node. */
using TileId = std::uint32_t;

/** Flat identifier of a tile across the whole prototype. */
using GlobalTileId = std::uint32_t;

/** Identifier of an FPGA inside the F1 instance. */
using FpgaId = std::uint32_t;

/** Cache line size used throughout the BYOC-style memory system. */
inline constexpr std::uint32_t kCacheLineBytes = 64;

/** Returns the cache-line-aligned base of @p addr. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kCacheLineBytes - 1);
}

/** Returns true when @p addr is aligned to @p bytes (power of two). */
constexpr bool
isAligned(Addr addr, std::uint64_t bytes)
{
    return (addr & (bytes - 1)) == 0;
}

} // namespace smappic
