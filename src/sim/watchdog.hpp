/**
 * @file
 * Commit-progress watchdog for multi-node runs.
 *
 * Cloud FPGA prototypes wedge in ways an on-prem rig rarely sees: a node
 * stops committing because a link degraded, an interrupt packet was lost,
 * or the shell dropped a DMA — and the rest of the system keeps running,
 * burning hours of simulation that can never finish. The watchdog samples
 * per-node committed-instruction heartbeats at every quantum barrier; a
 * node that stays live (unfinished cores) but commits nothing for the
 * configured number of cycles is *stalled*. Policy is configurable:
 * report (count it and keep going), panic (fail fast for CI), or recover
 * (the platform rolls back to the last good checkpoint and resumes —
 * see Prototype and docs/INTERNALS.md for the recovery state machine).
 *
 * Determinism: the watchdog observes only barrier-time state (committed
 * counts, liveness, the boundary cycle), all of which are worker-count
 * invariant under the phased engine's contract, so detection — and any
 * recovery it triggers — fires at the same barrier for any worker count.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::sim
{

/** What to do when a stalled node is detected. */
enum class WatchdogAction : std::uint8_t
{
    kReport = 0, ///< Record stats ("watchdog.stallsDetected") only.
    kPanic = 1,  ///< Panic with the stalled node list (fail fast).
    kRecover = 2, ///< Roll back to the last checkpoint and resume.
};

/** Watchdog knobs carried by PrototypeConfig. */
struct WatchdogConfig
{
    /** Cycles a live node may go without committing an instruction
     *  before it counts as stalled; 0 disables the watchdog. */
    Cycles stallCycles = 0;
    WatchdogAction action = WatchdogAction::kReport;
    /** Recovery attempts before kRecover degrades to kReport — bounds
     *  the rollback loop when the wedge is deterministic. */
    std::uint32_t maxRecoveries = 3;

    bool enabled() const { return stallCycles > 0; }
};

/** Per-node no-commit-progress detector (one per Prototype run). */
class Watchdog
{
  public:
    /** Stall verdict for one observation. */
    struct Verdict
    {
        bool stallDetected = false;
        std::vector<std::uint32_t> stalledNodes;
    };

    Watchdog(const WatchdogConfig &cfg, std::uint32_t nodes,
             StatRegistry *stats);

    /**
     * Samples the heartbeats at a barrier.
     * @param now The barrier's boundary cycle.
     * @param committed Per-node committed-instruction totals.
     * @param live Per-node "has unfinished cores" flags; nodes that are
     *        done can never stall.
     *
     * After a stall fires, the stalled nodes' progress marks rebase to
     * @p now so one wedge is reported once per stallCycles window, not
     * once per barrier.
     */
    Verdict observe(Cycles now, const std::vector<std::uint64_t> &committed,
                    const std::vector<bool> &live);

    /** Re-primes every heartbeat (after a restore rewinds the state the
     *  committed counts are derived from). */
    void rebase();

    /**
     * Horizon query for idle skipping: the earliest cycle at which an
     * observe() could fire a stall verdict, assuming no node commits in
     * the meantime — min over nodes of lastProgress + stallCycles.
     * kNoDeadline when disabled or not yet primed (the priming observe
     * never fires). Observes strictly below this deadline with unchanged
     * committed counts are pure checks, so a barrier skip that lands on
     * the deadline reproduces the unskipped verdict sequence exactly.
     */
    Cycles nextDeadline() const;

    /** Records one completed rollback. */
    void noteRecovery() { ++recoveries_; }

    std::uint64_t stallsDetected() const { return stalls_; }
    std::uint64_t recoveries() const { return recoveries_; }
    const WatchdogConfig &config() const { return cfg_; }

  private:
    WatchdogConfig cfg_;
    StatRegistry *stats_;
    bool primed_ = false;
    std::vector<std::uint64_t> lastCommitted_;
    std::vector<Cycles> lastProgress_;
    std::uint64_t stalls_ = 0;
    std::uint64_t recoveries_ = 0;
};

} // namespace smappic::sim
