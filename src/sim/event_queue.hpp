/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The packet/cycle-level models (NoC routers, bridges, memory controllers,
 * UARTs) are driven by a single EventQueue. Events scheduled for the same
 * cycle fire in FIFO order of scheduling, which keeps component pipelines
 * deterministic.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace smappic::sim
{

/** Callable fired by the event queue at its scheduled cycle. */
using EventFn = std::function<void()>;

/** "No pending deadline" sentinel shared by every horizon query (the
 *  event queue, the CLINT timer, the watchdog, the NoC) so idle-skip
 *  code can min() horizons without special cases. */
inline constexpr Cycles kNoDeadline = ~Cycles{0};

/** Single-clock discrete-event queue. */
class EventQueue
{
  public:
    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** Schedules @p fn to run @p delay cycles from now. */
    void
    schedule(Cycles delay, EventFn fn)
    {
        heap_.push(Entry{now_ + delay, nextSeq_++, std::move(fn)});
    }

    /** Schedules @p fn at absolute cycle @p when (must be >= now). */
    void scheduleAt(Cycles when, EventFn fn);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Timestamp of the earliest pending event. @pre !empty(). */
    Cycles nextEventTime() const { return heap_.top().when; }

    /**
     * Horizon query for idle skipping: the earliest cycle at which the
     * queue can change state, or kNoDeadline when no event is pending.
     * Unlike nextEventTime() this is total — safe to min() blindly.
     */
    Cycles
    nextDeadline() const
    {
        return heap_.empty() ? kNoDeadline : heap_.top().when;
    }

    /** Restore-time clock jump: sets now without running anything.
     *  Requires an empty queue (pending closures cannot be preserved
     *  across a jump) and panics otherwise. */
    void jumpTo(Cycles now);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Runs events until the queue drains or @p limit cycles elapse.
     * @return Number of events executed.
     */
    std::uint64_t run(Cycles limit = ~Cycles{0});

    /**
     * Runs events with timestamps <= @p until, then sets now to @p until
     * (if it advanced past the last event).
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Cycles until);

    /** Drops all pending events and rewinds time to zero. */
    void reset();

  private:
    struct Entry
    {
        Cycles when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace smappic::sim
