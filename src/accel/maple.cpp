#include "accel/maple.hpp"

#include <algorithm>

#include "noc/topology.hpp"
#include "sim/log.hpp"

namespace smappic::accel
{

MapleEngine::MapleEngine(cache::CoherentSystem &cs, GlobalTileId tile,
                         const MapleConfig &cfg)
    : cs_(cs), tile_(tile), cfg_(cfg)
{
    fatalIf(cfg.queueDepth == 0, "MAPLE queue needs at least one entry");
}

void
MapleEngine::fetchElement(Addr addr, std::uint32_t bytes,
                          Cycles issue_floor, std::uint32_t copies)
{
    // Bound run-ahead: element i may not issue before element i-depth has
    // completed (finite supply queue).
    Cycles floor = issue_floor;
    if (queue_.size() >= cfg_.queueDepth)
        floor = std::max(floor,
                         queue_[queue_.size() - cfg_.queueDepth].ready);
    engineClock_ = std::max(engineClock_ + cfg_.issueInterval, floor);
    auto r = cs_.access(tile_, addr, cache::AccessType::kLoad, bytes,
                        engineClock_);
    Cycles ready = engineClock_ + r.latency;
    // One fetch may supply several queue entries (e.g. the dense columns
    // of a gathered SPMM row); they all ride the same row fill.
    std::uint32_t value_bytes = bytes / copies;
    for (std::uint32_t k = 0; k < copies; ++k) {
        std::uint64_t value = cs_.memory().load(
            addr + static_cast<Addr>(k) * value_bytes,
            std::min(value_bytes, 8u));
        queue_.push_back(Entry{value, ready});
    }
}

void
MapleEngine::program(const std::vector<Addr> &pattern, Cycles now)
{
    queue_.clear();
    consumed_ = 0;
    stall_ = 0;
    engineClock_ = now;
    for (Addr a : pattern)
        fetchElement(a, 8, now, 1);
}

void
MapleEngine::programIndirect(Addr index_base, std::uint64_t count,
                             Addr data_base, std::uint32_t elem_bytes,
                             Cycles now, std::uint32_t values_per_index)
{
    queue_.clear();
    consumed_ = 0;
    stall_ = 0;
    engineClock_ = now;
    Cycles index_clock = now;
    for (std::uint64_t i = 0; i < count; ++i) {
        // First-level stream: the index array (sequential, caches well).
        Addr idx_addr = index_base + i * 8;
        auto ir = cs_.access(tile_, idx_addr, cache::AccessType::kLoad, 8,
                             index_clock);
        index_clock += cfg_.issueInterval;
        std::uint64_t idx = cs_.memory().load(idx_addr, 8);
        // Second-level gather: dependent element, issued once the index
        // word is available.
        fetchElement(data_base + idx * elem_bytes, elem_bytes,
                     index_clock + ir.latency, values_per_index);
    }
}

std::uint64_t
MapleEngine::consume(GlobalTileId consumer, Cycles now, Cycles &lat,
                     bool streaming)
{
    panicIf(exhausted(), "MAPLE consume past end of program");
    const Entry &e = queue_[consumed_++];
    if (streaming) {
        Cycles wait = e.ready > now ? e.ready - now : 0;
        stall_ += wait;
        lat = cfg_.popLatency + wait;
        return e.value;
    }

    // MMIO pop: consumer -> engine tile -> back.
    noc::MeshTopology topo(cs_.geometry().tilesPerNode);
    std::uint32_t hops = 0;
    if (consumer / cs_.geometry().tilesPerNode ==
        tile_ / cs_.geometry().tilesPerNode) {
        hops = topo.hops(consumer % cs_.geometry().tilesPerNode,
                         tile_ % cs_.geometry().tilesPerNode);
    } else {
        hops = 8; // Cross-node pops are not used by the paper's setup.
    }
    Cycles path = cs_.timing().nocInject + 2 * hops * cs_.timing().hopLatency;
    Cycles arrival = now + path / 2;
    Cycles wait = e.ready > arrival ? e.ready - arrival : 0;
    stall_ += wait;
    lat = cfg_.popLatency + path + wait;
    return e.value;
}

std::uint64_t
MapleEngine::ncLoad(Addr, std::uint32_t, Cycles now, Cycles &service)
{
    panicIf(exhausted(), "MAPLE MMIO pop past end of program");
    const Entry &e = queue_[consumed_++];
    Cycles wait = e.ready > now ? e.ready - now : 0;
    stall_ += wait;
    service = cfg_.popLatency + wait;
    return e.value;
}

void
MapleEngine::ncStore(Addr, std::uint32_t, std::uint64_t, Cycles,
                     Cycles &service)
{
    service = cfg_.popLatency;
}

} // namespace smappic::accel
