#include "accel/gng.hpp"

namespace smappic::accel
{

TauswortheGenerator::TauswortheGenerator(std::uint32_t seed)
{
    // Seeds must satisfy the generators' minimum-value constraints.
    s1_ = seed | 0x100;
    s2_ = (seed * 0x9e3779b9u) | 0x1000;
    s3_ = (seed * 0x85ebca6bu) | 0x10000;
}

std::uint32_t
TauswortheGenerator::next()
{
    // taus88 (Tausworthe, L'Ecuyer 1996).
    s1_ = ((s1_ & 0xfffffffeu) << 12) ^ (((s1_ << 13) ^ s1_) >> 19);
    s2_ = ((s2_ & 0xfffffff8u) << 4) ^ (((s2_ << 2) ^ s2_) >> 25);
    s3_ = ((s3_ & 0xfffffff0u) << 17) ^ (((s3_ << 3) ^ s3_) >> 11);
    return s1_ ^ s2_ ^ s3_;
}

std::int16_t
GngAccelerator::nextSample()
{
    // Central-limit stage: sum of 8 uniform 16-bit lanes approximates a
    // Gaussian; normalize to unit variance in s4.11 fixed point.
    // Var(sum of 8 uniforms over [0,65535]) = 8 * (2^32-1)/12.
    std::int64_t acc = 0;
    for (int i = 0; i < 4; ++i) {
        std::uint32_t u = uniform_.next();
        acc += static_cast<std::int64_t>(u & 0xffff) - 32768;
        acc += static_cast<std::int64_t>(u >> 16) - 32768;
    }
    // sigma of acc = sqrt(8 * 65536^2 / 12) ~= 53510.
    // sample = acc / sigma in s4.11: acc * 2048 / 53510 ~= acc * 313 / 8192.
    std::int64_t fixed = acc * 313 / 8192;
    if (fixed > 32767)
        fixed = 32767;
    if (fixed < -32768)
        fixed = -32768;
    ++served_;
    return static_cast<std::int16_t>(fixed);
}

std::uint64_t
GngAccelerator::ncLoad(Addr, std::uint32_t bytes, Cycles, Cycles &service)
{
    // One pipelined sample per cycle after a small fixed access time.
    std::uint32_t samples = bytes >= 8 ? 4 : (bytes >= 4 ? 2 : 1);
    service = 4 + samples;
    std::uint64_t packed = 0;
    for (std::uint32_t i = 0; i < samples; ++i) {
        auto s = static_cast<std::uint16_t>(nextSample());
        packed |= static_cast<std::uint64_t>(s) << (16 * i);
    }
    return packed;
}

void
GngAccelerator::ncStore(Addr, std::uint32_t, std::uint64_t, Cycles,
                        Cycles &service)
{
    service = 4; // Configuration writes are accepted and ignored.
}

} // namespace smappic::accel
