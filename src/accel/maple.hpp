/**
 * @file
 * MAPLE decoupled-access engine (paper section 4.3; Orenes-Vera et al.,
 * ISCA'22).
 *
 * MAPLE occupies a tile and is programmed before execution to fetch data
 * asynchronously from memory and supply it to the Execute core exactly
 * when needed (Decoupled Access/Execute). The engine issues non-blocking
 * loads through the coherent memory system from its own tile and fills a
 * bounded supply queue; the consumer core pops entries with non-cacheable
 * loads and only stalls when the engine has not run far enough ahead —
 * which is how the engine tolerates irregular-access latency.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/coherent_system.hpp"
#include "sim/types.hpp"

namespace smappic::accel
{

/** Tunables of one MAPLE engine. */
struct MapleConfig
{
    std::uint32_t queueDepth = 32; ///< Supply-queue entries.
    Cycles issueInterval = 2;      ///< Engine load-issue cadence.
    Cycles popLatency = 24;        ///< Queue-pop cost when data is ready
                                   ///< (non-cacheable load on the core).
};

/** One MAPLE engine instance attached to a tile. */
class MapleEngine : public cache::NcDevice
{
  public:
    MapleEngine(cache::CoherentSystem &cs, GlobalTileId tile,
                const MapleConfig &cfg = {});

    /**
     * Programs an access pattern: the engine will fetch the given
     * addresses in order, starting at time @p now. Clears any previous
     * program.
     */
    void program(const std::vector<Addr> &pattern, Cycles now);

    /**
     * Programs an indirect pattern base[index[i]] (SPMV-style gathers):
     * the engine first fetches index words, then the dependent elements,
     * modeling the two-level decoupling MAPLE performs in hardware.
     *
     * @param values_per_index Queue entries supplied per gathered row
     *        (SPMM consumes each dense column separately); all entries of
     *        a row become ready when its single row fetch completes.
     */
    void programIndirect(Addr index_base, std::uint64_t count,
                         Addr data_base, std::uint32_t elem_bytes,
                         Cycles now, std::uint32_t values_per_index = 1);

    /**
     * Consumer pop: returns the next value and its latency as seen from
     * @p consumer at time @p now.
     * @param streaming Back-to-back pop that pipelines with the previous
     *        one (e.g. the remaining dense columns of an SPMM row): it
     *        pays queue occupancy but not another NoC round trip.
     */
    std::uint64_t consume(GlobalTileId consumer, Cycles now, Cycles &lat,
                          bool streaming = false);

    /** Entries not yet consumed. */
    std::size_t pending() const { return queue_.size() - consumed_; }
    bool exhausted() const { return consumed_ >= queue_.size(); }

    /** Total cycles consumers spent stalled on an empty queue. */
    Cycles consumerStallCycles() const { return stall_; }

    GlobalTileId tile() const { return tile_; }

    // cache::NcDevice: pops via MMIO load (guest-program interface).
    std::uint64_t ncLoad(Addr offset, std::uint32_t bytes, Cycles now,
                         Cycles &service) override;
    void ncStore(Addr offset, std::uint32_t bytes, std::uint64_t value,
                 Cycles now, Cycles &service) override;

  private:
    struct Entry
    {
        std::uint64_t value = 0;
        Cycles ready = 0;
    };

    void fetchElement(Addr addr, std::uint32_t bytes, Cycles issue_floor,
                      std::uint32_t copies);

    cache::CoherentSystem &cs_;
    GlobalTileId tile_;
    MapleConfig cfg_;

    std::vector<Entry> queue_;
    std::size_t consumed_ = 0;
    Cycles engineClock_ = 0;
    Cycles stall_ = 0;
};

} // namespace smappic::accel
