/**
 * @file
 * Timing-free golden RV64IMA(+Zicsr) reference interpreter.
 *
 * ref::GoldenCore executes one instruction at a time against a flat
 * ref::GoldenMemory and nothing else: no pipeline, no caches, no TLBs,
 * no translation, no device models. It exists as the independent
 * specification half of the lockstep differential checker
 * (check::LockstepChecker): the DUT's timing interpreter commits an
 * instruction, the golden core replays it from its own state, and the
 * two post-states are diffed field by field.
 *
 * The split of responsibilities:
 *  - Execution semantics (ALU/M/A results, sign extension, traps, CSR
 *    WARL behavior, LR/SC reservations) are implemented here from the
 *    spec, independently of RvCore's switch.
 *  - Decoding reuses riscv::decode(): the decoder is cross-checked by
 *    the assembler round-trip suites, and sharing it keeps the golden
 *    core honest about *which word* was fetched — a stale decode in the
 *    DUT shows up as a word/state mismatch because the golden core
 *    always fetches fresh bytes from its own memory.
 *  - Environment inputs the spec cannot predict — free-running counter
 *    CSRs (cycle/time/instret), mip, and loads from device space or
 *    cross-hart shared ranges — are resolved through checker-supplied
 *    hooks instead of being modeled.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "riscv/isa.hpp"
#include "sim/types.hpp"

namespace smappic::ref
{

/** Flat sparse little-endian byte store; unwritten bytes read as 0. */
class GoldenMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Zero-extending little-endian load of @p bytes (1..8). */
    std::uint64_t load(Addr addr, std::uint32_t bytes) const;
    /** Little-endian store of the low @p bytes of @p value (1..8). */
    void store(Addr addr, std::uint32_t bytes, std::uint64_t value);
    void writeBytes(Addr addr, const void *in, std::uint64_t len);
    std::uint32_t fetch(Addr addr) const
    {
        return static_cast<std::uint32_t>(load(addr, 4));
    }

  private:
    const std::vector<std::uint8_t> *page(std::uint64_t idx) const;
    std::vector<std::uint8_t> &touch(std::uint64_t idx);

    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
};

/** Static configuration of one golden hart. */
struct GoldenConfig
{
    std::uint32_t hartId = 0;
    Addr resetPc = 0x80000000;
};

/** One timing-free reference hart. */
class GoldenCore
{
  public:
    /**
     * Resolves reads of environment-owned CSRs (cycle, time, instret,
     * mcycle, minstret, mip): the checker supplies the value the DUT
     * observed. Unset reads return 0.
     */
    using EnvCsrFn = std::function<std::uint64_t(std::uint16_t csr)>;

    /**
     * Resolves a load whose address the environment owns (device space
     * or a shared range): returns true and the *final rd value* (after
     * any sign extension — for an SC, the success flag; for an AMO, the
     * extended old value). Unset env loads produce 0.
     */
    using EnvLoadFn =
        std::function<bool(Addr addr, std::uint32_t bytes,
                           std::uint64_t &rd)>;

    /** True when [addr, addr+bytes) is environment-owned. Data reads
     *  there go through EnvLoadFn and data writes are dropped (the
     *  environment's memory is not modeled). Unset = nothing is. */
    using EnvRangeFn = std::function<bool(Addr addr, std::uint32_t bytes)>;

    /** Outcome of one golden step. */
    struct Step
    {
        Addr pc = 0;            ///< pc the step started at.
        std::uint32_t word = 0; ///< Instruction word fetched (0 on
                                ///< misaligned-pc traps).
        bool trapped = false;   ///< The step redirected into mtvec.
    };

    GoldenCore(const GoldenConfig &cfg, GoldenMemory &mem);

    /** Executes exactly one instruction (or fetch trap) from pc. */
    Step step();

    // Architectural state access (for the checker's diff and sync).
    std::uint64_t reg(unsigned idx) const { return regs_[idx]; }
    void setReg(unsigned idx, std::uint64_t v)
    {
        if (idx != 0 && idx < 32)
            regs_[idx] = v;
    }
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    unsigned privilege() const { return priv_; }
    void setPrivilege(unsigned p) { priv_ = p; }
    /** CSR value as a csrr would see it (env CSRs via the hook). */
    std::uint64_t csr(std::uint16_t num) const { return readCsr(num); }
    /** Raw state overwrite for checker resync — no WARL legalization. */
    void setCsrRaw(std::uint16_t num, std::uint64_t value);
    /** True when Sv39 translation would apply to the next instruction —
     *  outside the golden model's scope (the checker syncs instead). */
    bool translationActive() const
    {
        return (satp_ >> 60) == 8 && priv_ != 3;
    }

    void setEnvCsrFn(EnvCsrFn fn) { envCsr_ = std::move(fn); }
    void setEnvLoadFn(EnvLoadFn fn) { envLoad_ = std::move(fn); }
    void setEnvRangeFn(EnvRangeFn fn) { envRange_ = std::move(fn); }

    GoldenMemory &memory() { return mem_; }

  private:
    void takeTrap(std::uint64_t cause, std::uint64_t tval);
    std::uint64_t readCsr(std::uint16_t num) const;
    void writeCsr(std::uint16_t num, std::uint64_t value);
    bool envOwned(Addr addr, std::uint32_t bytes) const
    {
        return envRange_ && envRange_(addr, bytes);
    }

    GoldenConfig cfg_;
    GoldenMemory &mem_;

    std::uint64_t regs_[32] = {};
    Addr pc_;
    unsigned priv_ = 3;

    std::uint64_t mstatus_ = 0;
    std::uint64_t mie_ = 0;
    std::uint64_t mip_ = 0;
    std::uint64_t mtvec_ = 0;
    std::uint64_t mepc_ = 0;
    std::uint64_t mcause_ = 0;
    std::uint64_t mtval_ = 0;
    std::uint64_t mscratch_ = 0;
    std::uint64_t satp_ = 0;

    bool hasReservation_ = false;
    Addr reservation_ = 0;

    EnvCsrFn envCsr_;
    EnvLoadFn envLoad_;
    EnvRangeFn envRange_;
};

} // namespace smappic::ref
