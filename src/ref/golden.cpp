#include "ref/golden.hpp"

namespace smappic::ref
{

namespace
{

using riscv::Op;

std::int64_t
asSigned(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

std::uint64_t
sext32(std::uint64_t v)
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

std::uint64_t
sextBytes(std::uint64_t v, std::uint32_t bytes)
{
    switch (bytes) {
      case 1:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int8_t>(v)));
      case 2:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int16_t>(v)));
      case 4:
        return sext32(v);
      default:
        return v;
    }
}

} // namespace

// ---------------------------------------------------------------- memory

const std::vector<std::uint8_t> *
GoldenMemory::page(std::uint64_t idx) const
{
    auto it = pages_.find(idx);
    return it == pages_.end() ? nullptr : &it->second;
}

std::vector<std::uint8_t> &
GoldenMemory::touch(std::uint64_t idx)
{
    auto &p = pages_[idx];
    if (p.empty())
        p.assign(kPageBytes, 0);
    return p;
}

std::uint64_t
GoldenMemory::load(Addr addr, std::uint32_t bytes) const
{
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < bytes; ++i) {
        Addr a = addr + i;
        const auto *p = page(a / kPageBytes);
        std::uint64_t byte = p ? (*p)[a % kPageBytes] : 0;
        v |= byte << (8 * i);
    }
    return v;
}

void
GoldenMemory::store(Addr addr, std::uint32_t bytes, std::uint64_t value)
{
    for (std::uint32_t i = 0; i < bytes; ++i) {
        Addr a = addr + i;
        touch(a / kPageBytes)[a % kPageBytes] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
GoldenMemory::writeBytes(Addr addr, const void *in, std::uint64_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    for (std::uint64_t i = 0; i < len; ++i) {
        Addr a = addr + i;
        touch(a / kPageBytes)[a % kPageBytes] = src[i];
    }
}

// ------------------------------------------------------------------ core

GoldenCore::GoldenCore(const GoldenConfig &cfg, GoldenMemory &mem)
    : cfg_(cfg), mem_(mem), pc_(cfg.resetPc)
{
}

void
GoldenCore::takeTrap(std::uint64_t cause, std::uint64_t tval)
{
    mepc_ = pc_;
    mcause_ = cause;
    mtval_ = tval;
    std::uint64_t mie_bit = (mstatus_ & riscv::kMstatusMie) ? 1 : 0;
    mstatus_ &= ~(riscv::kMstatusMie | riscv::kMstatusMpie |
                  (3ULL << riscv::kMstatusMppShift));
    mstatus_ |= mie_bit << 7;
    mstatus_ |= static_cast<std::uint64_t>(priv_)
                << riscv::kMstatusMppShift;
    priv_ = 3;

    Addr base = mtvec_ & ~3ULL;
    if ((mtvec_ & 3) == 1 && (cause & riscv::kInterruptBit))
        pc_ = base + 4 * (cause & 0xff);
    else
        pc_ = base;
}

std::uint64_t
GoldenCore::readCsr(std::uint16_t num) const
{
    switch (num) {
      case riscv::kCsrMstatus: return mstatus_;
      case riscv::kCsrMisa:
        // RV64 (MXL=2) with I, M, A, S, U.
        return (2ULL << 62) | (1 << 0) | (1 << 8) | (1 << 12) | (1 << 18) |
               (1 << 20);
      case riscv::kCsrMie: return mie_;
      case riscv::kCsrMtvec: return mtvec_;
      case riscv::kCsrMepc: return mepc_;
      case riscv::kCsrMcause: return mcause_;
      case riscv::kCsrMtval: return mtval_;
      case riscv::kCsrMscratch: return mscratch_;
      case riscv::kCsrMhartid: return cfg_.hartId;
      case riscv::kCsrSatp: return satp_;
      // Environment-owned: free-running counters and the interrupt
      // pending bits are inputs, not spec state — the checker supplies
      // the DUT-observed value.
      case riscv::kCsrMip:
      case riscv::kCsrCycle:
      case riscv::kCsrMcycle:
      case riscv::kCsrTime:
      case riscv::kCsrInstret:
      case riscv::kCsrMinstret:
        return envCsr_ ? envCsr_(num) : 0;
      default:
        return 0;
    }
}

void
GoldenCore::writeCsr(std::uint16_t num, std::uint64_t value)
{
    switch (num) {
      case riscv::kCsrMstatus:
        mstatus_ = riscv::legalizeMstatusWrite(value);
        break;
      case riscv::kCsrMie:
        mie_ = value;
        break;
      case riscv::kCsrMip:
        mip_ = value;
        break;
      case riscv::kCsrMtvec:
        mtvec_ = riscv::legalizeMtvecWrite(value);
        break;
      case riscv::kCsrMepc:
        mepc_ = riscv::legalizeMepcWrite(value);
        break;
      case riscv::kCsrMcause:
        mcause_ = value;
        break;
      case riscv::kCsrMtval:
        mtval_ = value;
        break;
      case riscv::kCsrMscratch:
        mscratch_ = value;
        break;
      case riscv::kCsrSatp:
        satp_ = riscv::legalizeSatpWrite(satp_, value);
        break;
      default:
        break; // Unimplemented/read-only CSR writes are ignored.
    }
}

void
GoldenCore::setCsrRaw(std::uint16_t num, std::uint64_t value)
{
    switch (num) {
      case riscv::kCsrMstatus: mstatus_ = value; break;
      case riscv::kCsrMie: mie_ = value; break;
      case riscv::kCsrMip: mip_ = value; break;
      case riscv::kCsrMtvec: mtvec_ = value; break;
      case riscv::kCsrMepc: mepc_ = value; break;
      case riscv::kCsrMcause: mcause_ = value; break;
      case riscv::kCsrMtval: mtval_ = value; break;
      case riscv::kCsrMscratch: mscratch_ = value; break;
      case riscv::kCsrSatp: satp_ = value; break;
      default: break;
    }
}

GoldenCore::Step
GoldenCore::step()
{
    Step out;
    out.pc = pc_;

    Addr pc = pc_;
    if (pc & 3) {
        takeTrap(riscv::kCauseMisalignedFetch, pc);
        out.trapped = true;
        return out;
    }

    std::uint32_t word = mem_.fetch(pc);
    out.word = word;
    riscv::DecodedInst d = riscv::decode(word);

    Addr next_pc = pc + 4;
    bool redirect = false;

    auto rs1 = [&] { return regs_[d.rs1]; };
    auto rs2 = [&] { return regs_[d.rs2]; };
    auto wr = [&](std::uint64_t v) {
        if (d.rd != 0)
            regs_[d.rd] = v;
    };
    auto trap = [&](std::uint64_t cause, std::uint64_t tval) {
        takeTrap(cause, tval);
        redirect = true;
        out.trapped = true;
    };
    // Loads whose value the environment supplies set rd directly (the
    // hook returns the post-extension value).
    auto envRead = [&](Addr a, std::uint32_t bytes) {
        std::uint64_t v = 0;
        if (envLoad_)
            envLoad_(a, bytes, v);
        wr(v);
    };

    switch (d.op) {
      case Op::kLui:
        wr(static_cast<std::uint64_t>(d.imm));
        break;
      case Op::kAuipc:
        wr(pc + static_cast<std::uint64_t>(d.imm));
        break;
      case Op::kJal:
        wr(pc + 4);
        next_pc = pc + static_cast<std::uint64_t>(d.imm);
        break;
      case Op::kJalr: {
          Addr target = (rs1() + static_cast<std::uint64_t>(d.imm)) & ~1ULL;
          wr(pc + 4);
          next_pc = target;
          break;
      }
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu: {
          bool taken = false;
          switch (d.op) {
            case Op::kBeq: taken = rs1() == rs2(); break;
            case Op::kBne: taken = rs1() != rs2(); break;
            case Op::kBlt: taken = asSigned(rs1()) < asSigned(rs2()); break;
            case Op::kBge:
              taken = asSigned(rs1()) >= asSigned(rs2());
              break;
            case Op::kBltu: taken = rs1() < rs2(); break;
            case Op::kBgeu: taken = rs1() >= rs2(); break;
            default: break;
          }
          if (taken)
              next_pc = pc + static_cast<std::uint64_t>(d.imm);
          break;
      }
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
      case Op::kLbu: case Op::kLhu: case Op::kLwu: {
          Addr va = rs1() + static_cast<std::uint64_t>(d.imm);
          std::uint32_t bytes = 1;
          if (d.op == Op::kLh || d.op == Op::kLhu)
              bytes = 2;
          else if (d.op == Op::kLw || d.op == Op::kLwu)
              bytes = 4;
          else if (d.op == Op::kLd)
              bytes = 8;
          if (envOwned(va, bytes)) {
              envRead(va, bytes);
              break;
          }
          std::uint64_t v = mem_.load(va, bytes);
          if (d.op == Op::kLb || d.op == Op::kLh || d.op == Op::kLw)
              v = sextBytes(v, bytes);
          wr(v);
          break;
      }
      case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd: {
          Addr va = rs1() + static_cast<std::uint64_t>(d.imm);
          std::uint32_t bytes = 1;
          if (d.op == Op::kSh)
              bytes = 2;
          else if (d.op == Op::kSw)
              bytes = 4;
          else if (d.op == Op::kSd)
              bytes = 8;
          if (!envOwned(va, bytes))
              mem_.store(va, bytes, rs2());
          hasReservation_ = false;
          break;
      }
      case Op::kAddi: wr(rs1() + static_cast<std::uint64_t>(d.imm)); break;
      case Op::kSlti: wr(asSigned(rs1()) < d.imm ? 1 : 0); break;
      case Op::kSltiu:
        wr(rs1() < static_cast<std::uint64_t>(d.imm) ? 1 : 0);
        break;
      case Op::kXori: wr(rs1() ^ static_cast<std::uint64_t>(d.imm)); break;
      case Op::kOri: wr(rs1() | static_cast<std::uint64_t>(d.imm)); break;
      case Op::kAndi: wr(rs1() & static_cast<std::uint64_t>(d.imm)); break;
      case Op::kSlli: wr(rs1() << d.imm); break;
      case Op::kSrli: wr(rs1() >> d.imm); break;
      case Op::kSrai:
        wr(static_cast<std::uint64_t>(asSigned(rs1()) >> d.imm));
        break;
      case Op::kAdd: wr(rs1() + rs2()); break;
      case Op::kSub: wr(rs1() - rs2()); break;
      case Op::kSll: wr(rs1() << (rs2() & 63)); break;
      case Op::kSlt: wr(asSigned(rs1()) < asSigned(rs2()) ? 1 : 0); break;
      case Op::kSltu: wr(rs1() < rs2() ? 1 : 0); break;
      case Op::kXor: wr(rs1() ^ rs2()); break;
      case Op::kSrl: wr(rs1() >> (rs2() & 63)); break;
      case Op::kSra:
        wr(static_cast<std::uint64_t>(asSigned(rs1()) >> (rs2() & 63)));
        break;
      case Op::kOr: wr(rs1() | rs2()); break;
      case Op::kAnd: wr(rs1() & rs2()); break;
      case Op::kAddiw:
        wr(sext32(rs1() + static_cast<std::uint64_t>(d.imm)));
        break;
      case Op::kSlliw: wr(sext32(rs1() << d.imm)); break;
      case Op::kSrliw:
        wr(sext32(static_cast<std::uint32_t>(rs1()) >> d.imm));
        break;
      case Op::kSraiw:
        wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1()) >> d.imm)));
        break;
      case Op::kAddw: wr(sext32(rs1() + rs2())); break;
      case Op::kSubw: wr(sext32(rs1() - rs2())); break;
      case Op::kSllw: wr(sext32(rs1() << (rs2() & 31))); break;
      case Op::kSrlw:
        wr(sext32(static_cast<std::uint32_t>(rs1()) >> (rs2() & 31)));
        break;
      case Op::kSraw:
        wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1()) >> (rs2() & 31))));
        break;
      case Op::kMul: wr(rs1() * rs2()); break;
      case Op::kMulh: {
          auto a = static_cast<__int128>(asSigned(rs1()));
          auto b = static_cast<__int128>(asSigned(rs2()));
          wr(static_cast<std::uint64_t>((a * b) >> 64));
          break;
      }
      case Op::kMulhsu: {
          auto a = static_cast<__int128>(asSigned(rs1()));
          auto b = static_cast<__int128>(
              static_cast<unsigned __int128>(rs2()));
          wr(static_cast<std::uint64_t>((a * b) >> 64));
          break;
      }
      case Op::kMulhu: {
          auto a = static_cast<unsigned __int128>(rs1());
          auto b = static_cast<unsigned __int128>(rs2());
          wr(static_cast<std::uint64_t>((a * b) >> 64));
          break;
      }
      case Op::kDiv: {
          std::int64_t a = asSigned(rs1());
          std::int64_t b = asSigned(rs2());
          if (b == 0)
              wr(~0ULL);
          else if (a == INT64_MIN && b == -1)
              wr(static_cast<std::uint64_t>(a));
          else
              wr(static_cast<std::uint64_t>(a / b));
          break;
      }
      case Op::kDivu: wr(rs2() == 0 ? ~0ULL : rs1() / rs2()); break;
      case Op::kRem: {
          std::int64_t a = asSigned(rs1());
          std::int64_t b = asSigned(rs2());
          if (b == 0)
              wr(static_cast<std::uint64_t>(a));
          else if (a == INT64_MIN && b == -1)
              wr(0);
          else
              wr(static_cast<std::uint64_t>(a % b));
          break;
      }
      case Op::kRemu: wr(rs2() == 0 ? rs1() : rs1() % rs2()); break;
      case Op::kMulw: wr(sext32(rs1() * rs2())); break;
      case Op::kDivw: {
          auto a = static_cast<std::int32_t>(rs1());
          auto b = static_cast<std::int32_t>(rs2());
          if (b == 0)
              wr(~0ULL);
          else if (a == INT32_MIN && b == -1)
              wr(sext32(static_cast<std::uint32_t>(a)));
          else
              wr(sext32(static_cast<std::uint32_t>(a / b)));
          break;
      }
      case Op::kDivuw: {
          auto a = static_cast<std::uint32_t>(rs1());
          auto b = static_cast<std::uint32_t>(rs2());
          wr(b == 0 ? ~0ULL : sext32(a / b));
          break;
      }
      case Op::kRemw: {
          auto a = static_cast<std::int32_t>(rs1());
          auto b = static_cast<std::int32_t>(rs2());
          if (b == 0)
              wr(sext32(static_cast<std::uint32_t>(a)));
          else if (a == INT32_MIN && b == -1)
              wr(0);
          else
              wr(sext32(static_cast<std::uint32_t>(a % b)));
          break;
      }
      case Op::kRemuw: {
          auto a = static_cast<std::uint32_t>(rs1());
          auto b = static_cast<std::uint32_t>(rs2());
          wr(b == 0 ? sext32(a) : sext32(a % b));
          break;
      }
      case Op::kFence:
      case Op::kFenceI:
      case Op::kSfenceVma:
        break; // Ordering only; no architectural effect here.
      case Op::kEcall:
        // The environment-absorbed case never reaches the golden core
        // (the checker syncs instead); a replayed ecall always traps.
        trap(priv_ == 3 ? riscv::kCauseEcallM
                        : riscv::kCauseEcallU + priv_,
             0);
        break;
      case Op::kEbreak:
        // The DUT parks on ebreak without retiring, so a replayed one
        // signals desync; trap per spec and let the diff surface it.
        trap(riscv::kCauseBreakpoint, pc);
        break;
      case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci: {
          bool imm_form = d.op == Op::kCsrrwi || d.op == Op::kCsrrsi ||
                          d.op == Op::kCsrrci;
          std::uint64_t src =
              imm_form ? static_cast<std::uint64_t>(d.imm) : rs1();
          std::uint64_t old = readCsr(d.csr);
          bool is_set = d.op == Op::kCsrrs || d.op == Op::kCsrrsi;
          bool is_clear = d.op == Op::kCsrrc || d.op == Op::kCsrrci;
          // csrrs/csrrc with x0 (or zimm 0) read without writing.
          bool writes = !(is_set || is_clear) ||
                        (imm_form ? d.imm != 0 : d.rs1 != 0);
          if (writes) {
              std::uint64_t next = src;
              if (is_set)
                  next = old | src;
              else if (is_clear)
                  next = old & ~src;
              writeCsr(d.csr, next);
          }
          wr(old);
          break;
      }
      case Op::kMret:
      case Op::kSret: {
          // All traps are taken in M mode; sret is treated as mret.
          unsigned mpp = static_cast<unsigned>(
              (mstatus_ >> riscv::kMstatusMppShift) & 3);
          if (mstatus_ & riscv::kMstatusMpie)
              mstatus_ |= riscv::kMstatusMie;
          else
              mstatus_ &= ~riscv::kMstatusMie;
          mstatus_ |= riscv::kMstatusMpie;
          mstatus_ &= ~(3ULL << riscv::kMstatusMppShift);
          priv_ = mpp;
          next_pc = mepc_;
          break;
      }
      case Op::kWfi:
        // Replayed only when the DUT retired it (interrupt pending):
        // architecturally a nop.
        break;
      case Op::kLrW: case Op::kLrD: {
          Addr va = rs1();
          std::uint32_t bytes = d.op == Op::kLrW ? 4 : 8;
          if (envOwned(va, bytes)) {
              envRead(va, bytes);
          } else {
              std::uint64_t v = mem_.load(va, bytes);
              wr(d.op == Op::kLrW ? sext32(v) : v);
          }
          hasReservation_ = true;
          reservation_ = lineAlign(va);
          break;
      }
      case Op::kScW: case Op::kScD: {
          Addr va = rs1();
          std::uint32_t bytes = d.op == Op::kScW ? 4 : 8;
          if (envOwned(va, bytes)) {
              envRead(va, bytes); // DUT-observed success flag.
          } else if (hasReservation_ && reservation_ == lineAlign(va)) {
              mem_.store(va, bytes, rs2());
              wr(0);
          } else {
              wr(1);
          }
          hasReservation_ = false;
          break;
      }
      default: {
          if (d.isAmo()) {
              Addr va = rs1();
              bool is64 = d.op >= Op::kAmoSwapD;
              std::uint32_t bytes = is64 ? 8 : 4;
              if (envOwned(va, bytes)) {
                  envRead(va, bytes); // DUT-observed old value.
                  hasReservation_ = false;
                  break;
              }
              std::uint64_t old = mem_.load(va, bytes);
              std::uint64_t a = is64 ? old : sext32(old);
              std::uint64_t s = is64 ? rs2() : sext32(rs2());
              std::uint64_t next = a;
              switch (d.op) {
                case Op::kAmoSwapW: case Op::kAmoSwapD: next = s; break;
                case Op::kAmoAddW: case Op::kAmoAddD: next = a + s; break;
                case Op::kAmoXorW: case Op::kAmoXorD: next = a ^ s; break;
                case Op::kAmoAndW: case Op::kAmoAndD: next = a & s; break;
                case Op::kAmoOrW: case Op::kAmoOrD: next = a | s; break;
                case Op::kAmoMinW: case Op::kAmoMinD:
                  next = asSigned(a) < asSigned(s) ? a : s;
                  break;
                case Op::kAmoMaxW: case Op::kAmoMaxD:
                  next = asSigned(a) > asSigned(s) ? a : s;
                  break;
                case Op::kAmoMinuW: case Op::kAmoMinuD:
                  next = a < s ? a : s;
                  break;
                case Op::kAmoMaxuW: case Op::kAmoMaxuD:
                  next = a > s ? a : s;
                  break;
                default: break;
              }
              mem_.store(va, bytes, next);
              wr(is64 ? old : sext32(old));
              hasReservation_ = false;
              break;
          }
          trap(riscv::kCauseIllegalInst, word);
          break;
      }
    }

    if (!redirect)
        pc_ = next_pc;
    return out;
}

} // namespace smappic::ref
