/**
 * @file
 * SMAPPIC's inter-node bridge (paper section 3.1, Fig. 4).
 *
 * The bridge binds nodes on the same or different FPGAs into one shared
 * memory system by encapsulating NoC traffic into AXI4 write requests that
 * the hard shell tunnels over PCIe:
 *
 *  - aw channel: the write address encodes destination node-ID, source
 *    node-ID and valid bits for the flits carried in the data.
 *  - w channel: up to three NoC flits, one per physical network, so the
 *    three-NoC deadlock-avoidance structure is preserved across the link.
 *  - ar/r channels: the sender periodically issues a read to the receiver
 *    and gets the number of credits to return per NoC, implementing
 *    credit-based flow control end to end (required for deadlock freedom).
 *  - b channel: plain write acknowledgement.
 *
 * The receive side buffers flits per (source node, NoC); a credit violation
 * (buffer overflow) is a protocol bug and panics.
 *
 * Reliable link layer (ReliabilityConfig, off by default): the paper's
 * bridge assumes a lossless fabric, but cloud PCIe links see transient
 * faults. When enabled, each encapsulated write carries a trailer with a
 * per-peer sequence number and a CRC32 over the flit payload; the receiver
 * ACKs in-order frames on the b channel (BRESP=OKAY), NACKs corrupted or
 * out-of-order frames (BRESP=SLVERR) and suppresses duplicates, and the
 * sender keeps a bounded replay buffer retransmitted go-back-N style with
 * exponential backoff. Credit-return reads are CRC-protected the same way;
 * after a run of failed credit reads the peer is marked *degraded* (the
 * sender quiesces and probes periodically) instead of spinning, and re-arms
 * when the peer answers again. Replay exhaustion still panics: persistent
 * corruption is unrecoverable by design.
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "axi/axi.hpp"
#include "noc/packet.hpp"
#include "pcie/pcie_fabric.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::bridge
{

/** Reliable-link tunables; `enabled = false` keeps the paper's lossless
 *  wire format and adds no bytes, state or events. */
struct ReliabilityConfig
{
    bool enabled = false;
    std::uint32_t replayDepth = 64;  ///< Max unacked frames per peer.
    std::uint32_t maxRetries = 16;   ///< Retransmissions per frame before
                                     ///< the link panics as unrecoverable.
    Cycles ackTimeout = 128;         ///< Retransmit backoff base.
    std::uint32_t creditRetryLimit = 8; ///< Failed credit reads before the
                                        ///< peer is marked degraded.
    Cycles reprobeInterval = 2048;   ///< Degraded-peer probe period.
};

/** Tunables of the inter-node bridge. */
struct BridgeConfig
{
    std::uint32_t creditsPerNoc = 32; ///< Receive buffer depth per NoC.
    Cycles creditPollInterval = 64;   ///< Cycles between credit reads.
    Cycles decapLatency = 6;          ///< Receive-side decode pipeline.
    std::uint64_t windowSize = 1 << 20; ///< Fabric window per bridge.
    ReliabilityConfig reliability;    ///< Reliable link layer (opt-in).
};

/**
 * One node's inter-node bridge. Acts as an AXI target inside the PCIe
 * fabric (receive side) and an AXI initiator through it (send side).
 */
class InterNodeBridge : public axi::Target
{
  public:
    using DeliverFn = std::function<void(const noc::Packet &)>;

    /**
     * @param node This bridge's node id.
     * @param fpga The FPGA hosting the node (fabric source id).
     * @param window_base Base of this bridge's window in the fabric space.
     */
    InterNodeBridge(NodeId node, FpgaId fpga, Addr window_base,
                    sim::EventQueue &eq, pcie::PcieFabric &fabric,
                    const BridgeConfig &cfg, sim::StatRegistry *stats);

    /** Registers a peer bridge's fabric window for destination routing. */
    void addPeer(NodeId node, Addr window_base);

    /** Receive-side output: reassembled packets entering this node. */
    void setDeliverFn(DeliverFn fn) { deliver_ = std::move(fn); }

    /**
     * Attaches a fault injector (null to detach). Sites: "bridge.tx"
     * (corrupt flips a frame bit after the CRC is attached, so the
     * receiver's check must catch it) and "bridge.creditRead" (drop loses
     * the credit read before it reaches the fabric — a poll timeout).
     */
    void setFaultInjector(sim::FaultInjector *fi) { fault_ = fi; }

    /**
     * Attaches the phased engine's mailbox (null to detach). With a
     * router set, sendPacket() calls made from inside a node phase are
     * deferred to the next quantum boundary, so the bridge's queues,
     * credits and event scheduling only ever mutate in serial context.
     */
    void setRouter(sim::MailboxRouter *router) { router_ = router; }

    /**
     * Attaches the platform tracer (null to detach). The bridge emits
     * kBridgeTx for every encapsulated AXI frame formed by the pump and
     * kBridgeRx for every packet reassembled on the receive side.
     */
    void setTracer(obs::Tracer *tracer);

    /**
     * Send side: accepts a NoC packet leaving this node (ejected from the
     * mesh's off-chip port with dstNode != this node).
     */
    void sendPacket(const noc::Packet &pkt);

    // axi::Target (receive side, called by the fabric).
    axi::WriteResp write(const axi::WriteReq &req) override;
    axi::ReadResp read(const axi::ReadReq &req) override;

    NodeId node() const { return node_; }
    Addr windowBase() const { return windowBase_; }
    std::uint64_t windowSize() const { return cfg_.windowSize; }

    std::uint64_t flitsSent() const { return flitsSent_; }
    std::uint64_t flitsReceived() const { return flitsReceived_; }
    std::uint64_t packetsDelivered() const { return packetsDelivered_; }
    std::uint64_t axiWritesSent() const { return axiWritesSent_; }
    std::uint64_t creditReadsSent() const { return creditReadsSent_; }

    // Reliable-link observability (all zero when reliability is off).
    std::uint64_t retransmits() const { return retransmits_; }
    std::uint64_t crcErrors() const { return crcErrors_; }
    std::uint64_t duplicatesSuppressed() const { return duplicates_; }
    std::uint64_t outOfOrderRejected() const { return outOfOrder_; }
    std::uint64_t creditTimeouts() const { return creditTimeouts_; }
    std::uint64_t degradeEvents() const { return degradeEvents_; }
    std::uint64_t recoverEvents() const { return recoverEvents_; }

    /** True while @p peer is marked degraded (quiesced, probing). */
    bool peerDegraded(NodeId peer) const;

    /** Sender-side view of remaining credits toward @p peer. */
    std::uint32_t creditsAvailable(NodeId peer, noc::NocIndex noc) const;

    /** True when no flit is queued or awaiting ACK on the send side. */
    bool sendIdle() const;

    /**
     * Horizon query for idle skipping: the earliest cycle at which the
     * bridge can make send-side progress, or sim::kNoDeadline when the
     * send side is idle. Every bridge timer — the pump, retransmit
     * backoff, credit polls, degraded-peer probes — is scheduled on the
     * shared event queue, so a busy bridge's horizon is exactly the
     * queue's next deadline; there is no private countdown that could
     * fire sooner.
     */
    Cycles nextDeadline() const;

    /**
     * Serializes the link layer: per-peer sender state (queues, credits,
     * sequence numbers, replay window, degraded flags), per-source
     * receiver state and the bridge counters. Checkpoints are taken at
     * quiescent points, so no pump/retransmit/poll event is in flight;
     * restoreState() re-arms the degraded-peer probes, the only events a
     * quiescent bridge can still owe.
     */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    /** One unacknowledged frame held for possible retransmission. */
    struct PendingFrame
    {
        std::uint32_t seq = 0;
        std::uint8_t validMask = 0;
        std::array<std::uint64_t, noc::kNumNocs> flits{};
        std::uint32_t attempts = 0; ///< Retransmissions so far.
    };

    /** Per-destination sender state. */
    struct PeerState
    {
        Addr windowBase = 0;
        std::array<std::deque<std::uint64_t>, noc::kNumNocs> outQueue;
        std::array<std::uint32_t, noc::kNumNocs> credits;
        bool pollInFlight = false;

        // Reliable-link sender state.
        std::uint32_t nextSeq = 0;
        std::deque<PendingFrame> replay; ///< Unacked frames, seq order.
        bool retransmitScheduled = false;
        std::uint32_t backoffLevel = 0;
        std::uint32_t creditFailures = 0; ///< Consecutive failed polls.
        bool degraded = false;
        bool probeScheduled = false;
    };

    /**
     * Per-source receiver state. The hardware receive FIFO drains into the
     * local mesh at line rate, so a credit is freed (owed back to the
     * sender) as soon as a flit enters packet reassembly; `unreturned`
     * tracks credits the sender has consumed but not yet been repaid,
     * which must never exceed the configured window.
     */
    struct SourceState
    {
        std::array<std::deque<std::uint64_t>, noc::kNumNocs> assembly;
        std::array<std::uint32_t, noc::kNumNocs> owedCredits{};
        std::array<std::uint32_t, noc::kNumNocs> unreturned{};
        std::uint32_t expectedSeq = 0; ///< Next in-order frame (reliable).
    };

    static Addr encodeOffset(NodeId src, std::uint8_t valid_mask);
    static void decodeOffset(Addr offset, NodeId &src,
                             std::uint8_t &valid_mask);

    bool reliable() const { return cfg_.reliability.enabled; }
    static bool hasPendingTraffic(const PeerState &peer);

    void schedulePump();
    void pump();
    void transmitFrame(NodeId dst, const PeerState &peer,
                       const PendingFrame &frame);
    void onFrameCompletion(NodeId dst, std::uint32_t seq, axi::Resp resp);
    void scheduleRetransmit(NodeId dst);

    void scheduleCreditPoll(NodeId peer);
    void issueCreditRead(NodeId peer);
    void onCreditCompletion(NodeId peer, pcie::Completion c);
    void onCreditFailure(NodeId peer);
    void degradePeer(NodeId peer);
    void scheduleProbe(NodeId peer);
    void recoverPeer(NodeId peer);

    void acceptFlits(NodeId src, std::uint8_t valid_mask,
                     const std::uint8_t *flit_bytes);
    void tryAssemble(NodeId src, noc::NocIndex noc);

    NodeId node_;
    FpgaId fpga_;
    Addr windowBase_;
    sim::EventQueue &eq_;
    pcie::PcieFabric &fabric_;
    BridgeConfig cfg_;
    sim::StatRegistry *stats_;
    sim::FaultInjector *fault_ = nullptr;
    sim::MailboxRouter *router_ = nullptr;
    obs::Tracer *tracer_ = nullptr;

    std::map<NodeId, PeerState> peers_;
    std::map<NodeId, SourceState> sources_;
    DeliverFn deliver_;
    bool pumpScheduled_ = false;

    std::uint64_t flitsSent_ = 0;
    std::uint64_t flitsReceived_ = 0;
    std::uint64_t packetsDelivered_ = 0;
    std::uint64_t axiWritesSent_ = 0;
    std::uint64_t creditReadsSent_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t crcErrors_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t outOfOrder_ = 0;
    std::uint64_t creditTimeouts_ = 0;
    std::uint64_t degradeEvents_ = 0;
    std::uint64_t recoverEvents_ = 0;
};

} // namespace smappic::bridge
