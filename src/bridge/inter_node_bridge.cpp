#include "bridge/inter_node_bridge.hpp"

#include <algorithm>
#include <cstring>

#include "obs/tracer.hpp"
#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::bridge
{

namespace
{

/** One AXI write carries up to one flit per physical NoC. */
constexpr std::uint32_t kFlitsPerWrite = noc::kNumNocs;
constexpr std::uint32_t kFlitBytes = 8;
constexpr std::uint32_t kFlitPayloadBytes = kFlitsPerWrite * kFlitBytes;
/** Reliable-link trailer: 32-bit sequence number + CRC32. */
constexpr std::uint32_t kTrailerBytes = 8;
constexpr std::uint32_t kFrameBytes = kFlitPayloadBytes + kTrailerBytes;
/** Credit-return payload: one 32-bit count per NoC (+CRC when reliable). */
constexpr std::uint32_t kCreditBytes = noc::kNumNocs * 4;

/** CRC over a frame: flit payload + sequence number, bound to the flit
 *  valid mask and the sending node so a misdecoded address cannot pass. */
std::uint32_t
frameCrc(const std::uint8_t *data, std::uint8_t valid_mask, NodeId src)
{
    std::uint8_t aux[2] = {valid_mask, static_cast<std::uint8_t>(src)};
    return sim::crc32(aux, sizeof(aux),
                      sim::crc32(data, kFlitPayloadBytes + 4));
}

/** CRC over a credit-return payload, bound to the polling node. */
std::uint32_t
creditCrc(const std::uint8_t *data, NodeId poller)
{
    std::uint8_t aux = static_cast<std::uint8_t>(poller);
    return sim::crc32(&aux, 1, sim::crc32(data, kCreditBytes));
}

} // namespace

InterNodeBridge::InterNodeBridge(NodeId node, FpgaId fpga, Addr window_base,
                                 sim::EventQueue &eq,
                                 pcie::PcieFabric &fabric,
                                 const BridgeConfig &cfg,
                                 sim::StatRegistry *stats)
    : node_(node), fpga_(fpga), windowBase_(window_base), eq_(eq),
      fabric_(fabric), cfg_(cfg), stats_(stats)
{
    fatalIf(cfg.creditsPerNoc == 0, "bridge needs at least one credit");
    fatalIf(cfg.reliability.enabled && cfg.reliability.replayDepth == 0,
            "reliable bridge needs a nonzero replay window");
    fabric_.addWindow(window_base, cfg.windowSize, this, fpga,
                      strfmt("bridge.node%u", node));
    if (stats_ && cfg_.reliability.enabled) {
        // Register the reliability counters eagerly so a clean run shows
        // them at zero instead of omitting them.
        stats_->counter("bridge.retransmits");
        stats_->counter("bridge.crcErrors");
        stats_->counter("bridge.duplicates");
        stats_->counter("bridge.creditTimeouts");
        stats_->counter("bridge.peerDegraded");
        stats_->counter("bridge.peerRecovered");
    }
}

void
InterNodeBridge::addPeer(NodeId node, Addr window_base)
{
    fatalIf(node == node_, "bridge cannot peer with itself");
    PeerState &peer = peers_[node];
    peer.windowBase = window_base;
    peer.credits.fill(cfg_.creditsPerNoc);
}

Addr
InterNodeBridge::encodeOffset(NodeId src, std::uint8_t valid_mask)
{
    // Offset layout within the destination window:
    //   [19:12] source node-ID, [10:8] flit valid bits, [7:0] zero.
    return (static_cast<Addr>(src) << 12) |
           (static_cast<Addr>(valid_mask & 0x7) << 8);
}

void
InterNodeBridge::decodeOffset(Addr offset, NodeId &src,
                              std::uint8_t &valid_mask)
{
    src = static_cast<NodeId>((offset >> 12) & 0xff);
    valid_mask = static_cast<std::uint8_t>((offset >> 8) & 0x7);
}

bool
InterNodeBridge::hasPendingTraffic(const PeerState &peer)
{
    if (!peer.replay.empty())
        return true;
    for (const auto &q : peer.outQueue) {
        if (!q.empty())
            return true;
    }
    return false;
}

void
InterNodeBridge::sendPacket(const noc::Packet &pkt)
{
    if (router_ && sim::currentNode() != sim::kNoNode) {
        // Node-phase caller: the packet enters the bridge at the next
        // quantum boundary, in deterministic mailbox order.
        if (stats_)
            stats_->counter("bridge.deferred").increment();
        router_->post([this, pkt] { sendPacket(pkt); });
        return;
    }
    panicIf(pkt.dstNode == node_, "bridge asked to send a local packet");
    auto it = peers_.find(pkt.dstNode);
    panicIf(it == peers_.end(), "bridge has no peer for destination node");
    auto noc_idx = static_cast<std::size_t>(pkt.noc);
    for (const noc::Flit &f : serialize(pkt))
        it->second.outQueue[noc_idx].push_back(f.data);
    schedulePump();
}

void
InterNodeBridge::setTracer(obs::Tracer *tracer)
{
    tracer_ =
        tracer ? tracer->handleFor(obs::Component::kBridge) : nullptr;
}

void
InterNodeBridge::schedulePump()
{
    if (pumpScheduled_)
        return;
    pumpScheduled_ = true;
    eq_.schedule(1, [this] {
        pumpScheduled_ = false;
        pump();
    });
}

void
InterNodeBridge::pump()
{
    bool work_left = false;
    for (auto &[dst, peer] : peers_) {
        if (peer.degraded) {
            // Quiesced: don't touch the wire, but keep probing while
            // traffic waits so recovery re-arms the link.
            if (hasPendingTraffic(peer))
                scheduleProbe(dst);
            continue;
        }
        if (reliable() &&
            peer.replay.size() >= cfg_.reliability.replayDepth) {
            // Replay window full: the next ACK restarts the pump.
            continue;
        }

        // Form one AXI4 write per destination per cycle carrying up to one
        // flit from each physical NoC, credits permitting.
        std::uint8_t valid_mask = 0;
        std::array<std::uint64_t, kFlitsPerWrite> flits{};
        for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
            if (peer.outQueue[n].empty())
                continue;
            if (peer.credits[n] == 0) {
                // Stalled on credits: make sure a poll is pending.
                scheduleCreditPoll(dst);
                continue;
            }
            flits[n] = peer.outQueue[n].front();
            peer.outQueue[n].pop_front();
            peer.credits[n] -= 1;
            valid_mask |= static_cast<std::uint8_t>(1u << n);
        }

        if (valid_mask != 0) {
            ++axiWritesSent_;
            flitsSent_ += __builtin_popcount(valid_mask);
            if (stats_) {
                stats_->counter("bridge.axiWrites").increment();
                stats_->counter("bridge.flitsSent")
                    .increment(__builtin_popcount(valid_mask));
            }
            if (tracer_) {
                obs::TraceEvent ev =
                    obs::event(obs::EventKind::kBridgeTx);
                ev.cycle = eq_.now();
                ev.arg = reliable() ? peer.nextSeq : axiWritesSent_;
                ev.extra = valid_mask;
                ev.node = static_cast<std::uint16_t>(node_);
                ev.tile = static_cast<std::uint16_t>(dst);
                ev.flags = 1; // Frames always cross nodes.
                tracer_->record(ev);
            }
            if (reliable()) {
                PendingFrame frame;
                frame.seq = peer.nextSeq++;
                frame.validMask = valid_mask;
                frame.flits = flits;
                peer.replay.push_back(frame);
                transmitFrame(dst, peer, peer.replay.back());
            } else {
                axi::WriteReq req;
                req.addr =
                    peer.windowBase + encodeOffset(node_, valid_mask);
                req.data.resize(kFlitPayloadBytes);
                std::memcpy(req.data.data(), flits.data(),
                            req.data.size());
                fabric_.write(fpga_, std::move(req), nullptr);
            }
        }

        for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
            if (!peer.outQueue[n].empty())
                work_left = true;
        }
    }
    if (work_left)
        schedulePump();
}

void
InterNodeBridge::transmitFrame(NodeId dst, const PeerState &peer,
                               const PendingFrame &frame)
{
    axi::WriteReq req;
    req.addr = peer.windowBase + encodeOffset(node_, frame.validMask);
    req.data.resize(kFrameBytes);
    std::memcpy(req.data.data(), frame.flits.data(), kFlitPayloadBytes);
    std::memcpy(req.data.data() + kFlitPayloadBytes, &frame.seq, 4);
    std::uint32_t crc = frameCrc(req.data.data(), frame.validMask, node_);
    std::memcpy(req.data.data() + kFlitPayloadBytes + 4, &crc, 4);

    if (fault_ && fault_->decide("bridge.tx").corrupt) {
        // Flip a bit in the CRC-covered region: the datapath between the
        // encapsulator and the shell, which the receiver must detect.
        fault_->corruptBytes("bridge.tx", req.data.data(),
                             kFlitPayloadBytes + 4);
    }

    std::uint32_t seq = frame.seq;
    fabric_.write(fpga_, std::move(req),
                  [this, dst, seq](pcie::Completion c) {
                      onFrameCompletion(dst, seq, c.resp);
                  });
}

void
InterNodeBridge::onFrameCompletion(NodeId dst, std::uint32_t seq,
                                   axi::Resp resp)
{
    auto it = peers_.find(dst);
    if (it == peers_.end())
        return;
    PeerState &peer = it->second;
    if (peer.replay.empty() ||
        static_cast<std::int32_t>(seq - peer.replay.front().seq) < 0) {
        // Stale completion for an already-acknowledged frame.
        return;
    }
    if (resp == axi::Resp::kOkay) {
        // Cumulative ACK: everything up to seq arrived in order.
        while (!peer.replay.empty() &&
               static_cast<std::int32_t>(peer.replay.front().seq - seq) <=
                   0)
            peer.replay.pop_front();
        peer.backoffLevel = 0;
        schedulePump();
        return;
    }
    // NACK (CRC reject, out-of-order reject) or completion timeout for a
    // frame still in the window: go-back-N after a backoff.
    scheduleRetransmit(dst);
}

void
InterNodeBridge::scheduleRetransmit(NodeId dst)
{
    PeerState &peer = peers_.at(dst);
    if (peer.retransmitScheduled || peer.degraded)
        return;
    peer.retransmitScheduled = true;
    Cycles backoff = cfg_.reliability.ackTimeout
                     << std::min<std::uint32_t>(peer.backoffLevel, 8);
    eq_.schedule(backoff, [this, dst] {
        PeerState &p = peers_.at(dst);
        p.retransmitScheduled = false;
        if (p.replay.empty() || p.degraded)
            return;
        ++p.backoffLevel;
        for (PendingFrame &f : p.replay) {
            ++f.attempts;
            panicIf(f.attempts > cfg_.reliability.maxRetries,
                    "bridge link unrecoverable: replay retries exhausted "
                    "(persistent loss or corruption)");
            ++retransmits_;
            if (stats_)
                stats_->counter("bridge.retransmits").increment();
            transmitFrame(dst, p, f);
        }
    });
}

void
InterNodeBridge::scheduleCreditPoll(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    if (peer.pollInFlight || peer.degraded)
        return;
    peer.pollInFlight = true;
    ++creditReadsSent_;
    if (stats_)
        stats_->counter("bridge.creditReads").increment();

    Cycles wait = cfg_.creditPollInterval;
    if (reliable() && peer.creditFailures > 0) {
        // Exponential backoff between failed polls.
        wait <<= std::min<std::uint32_t>(peer.creditFailures, 6);
    }
    eq_.schedule(wait, [this, peer_id] { issueCreditRead(peer_id); });
}

void
InterNodeBridge::issueCreditRead(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    if (fault_ && fault_->decide("bridge.creditRead").drop) {
        // The read never makes it to the shell: a poll timeout.
        peer.pollInFlight = false;
        onCreditFailure(peer_id);
        return;
    }
    axi::ReadReq req;
    req.addr = peer.windowBase + encodeOffset(node_, 0);
    req.bytes = kCreditBytes + (reliable() ? 4 : 0);
    fabric_.read(fpga_, req, [this, peer_id](pcie::Completion c) {
        onCreditCompletion(peer_id, std::move(c));
    });
}

void
InterNodeBridge::onCreditCompletion(NodeId peer_id, pcie::Completion c)
{
    PeerState &peer = peers_.at(peer_id);
    peer.pollInFlight = false;

    bool ok = c.resp == axi::Resp::kOkay && c.data.size() >= kCreditBytes;
    if (ok && reliable()) {
        ok = c.data.size() >= kCreditBytes + 4;
        if (ok) {
            std::uint32_t got = 0;
            std::memcpy(&got, c.data.data() + kCreditBytes, 4);
            ok = got == creditCrc(c.data.data(), node_);
            if (!ok) {
                ++crcErrors_;
                if (stats_)
                    stats_->counter("bridge.crcErrors").increment();
            }
        }
    }
    if (!ok) {
        onCreditFailure(peer_id);
        return;
    }

    peer.creditFailures = 0;
    if (peer.degraded)
        recoverPeer(peer_id);

    bool gained = false;
    for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
        std::uint32_t returned = 0;
        std::memcpy(&returned, c.data.data() + n * 4, 4);
        peer.credits[n] += returned;
        panicIf(peer.credits[n] > cfg_.creditsPerNoc,
                "credit overflow: receiver returned too many");
        gained = gained || returned > 0;
    }
    bool pending = false;
    for (const auto &q : peer.outQueue)
        pending = pending || !q.empty();
    if (gained && pending)
        schedulePump();
    if (pending) {
        // Keep polling while traffic is stalled.
        bool starved = false;
        for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
            starved = starved ||
                      (!peer.outQueue[n].empty() && peer.credits[n] == 0);
        }
        if (starved)
            scheduleCreditPoll(peer_id);
    }
}

void
InterNodeBridge::onCreditFailure(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    ++creditTimeouts_;
    if (stats_)
        stats_->counter("bridge.creditTimeouts").increment();

    if (!reliable()) {
        // Legacy behaviour: retry while traffic is pending so a single
        // failed credit read cannot wedge the link.
        for (const auto &q : peer.outQueue) {
            if (!q.empty()) {
                scheduleCreditPoll(peer_id);
                break;
            }
        }
        return;
    }

    ++peer.creditFailures;
    if (peer.degraded) {
        // A probe failed; keep probing while traffic waits.
        scheduleProbe(peer_id);
        return;
    }
    if (peer.creditFailures >= cfg_.reliability.creditRetryLimit) {
        degradePeer(peer_id);
        return;
    }
    if (hasPendingTraffic(peer))
        scheduleCreditPoll(peer_id);
}

void
InterNodeBridge::degradePeer(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    peer.degraded = true;
    ++degradeEvents_;
    if (stats_)
        stats_->counter("bridge.peerDegraded").increment();
    warn(strfmt("bridge.node%u: peer %u degraded after %u failed credit "
                "reads; quiescing and probing",
                node_, peer_id, peer.creditFailures));
    scheduleProbe(peer_id);
}

void
InterNodeBridge::scheduleProbe(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    if (peer.probeScheduled || !peer.degraded)
        return;
    if (!hasPendingTraffic(peer)) {
        // Nothing to send: stay quiet; the next sendPacket re-probes.
        return;
    }
    peer.probeScheduled = true;
    eq_.schedule(cfg_.reliability.reprobeInterval, [this, peer_id] {
        PeerState &p = peers_.at(peer_id);
        p.probeScheduled = false;
        if (!p.degraded || p.pollInFlight)
            return;
        p.pollInFlight = true;
        ++creditReadsSent_;
        if (stats_)
            stats_->counter("bridge.creditReads").increment();
        issueCreditRead(peer_id);
    });
}

void
InterNodeBridge::recoverPeer(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    peer.degraded = false;
    peer.creditFailures = 0;
    peer.backoffLevel = 0;
    ++recoverEvents_;
    if (stats_)
        stats_->counter("bridge.peerRecovered").increment();
    inform(strfmt("bridge.node%u: peer %u recovered; re-arming link",
                  node_, peer_id));
    if (!peer.replay.empty())
        scheduleRetransmit(peer_id);
    schedulePump();
}

axi::WriteResp
InterNodeBridge::write(const axi::WriteReq &req)
{
    Addr offset = req.addr - windowBase_;
    NodeId src;
    std::uint8_t valid_mask;
    decodeOffset(offset, src, valid_mask);

    if (reliable()) {
        panicIf(req.data.size() < kFrameBytes,
                "bridge frame smaller than flits plus trailer");
        std::uint32_t seq = 0;
        std::uint32_t got = 0;
        std::memcpy(&seq, req.data.data() + kFlitPayloadBytes, 4);
        std::memcpy(&got, req.data.data() + kFlitPayloadBytes + 4, 4);
        if (got != frameCrc(req.data.data(), valid_mask, src)) {
            ++crcErrors_;
            if (stats_)
                stats_->counter("bridge.crcErrors").increment();
            return axi::WriteResp{axi::Resp::kSlvErr, req.id};
        }
        SourceState &state = sources_[src];
        auto delta =
            static_cast<std::int32_t>(seq - state.expectedSeq);
        if (delta < 0) {
            // Retransmission of a frame already delivered: suppress the
            // flits, but ACK so the sender's window advances.
            ++duplicates_;
            if (stats_)
                stats_->counter("bridge.duplicates").increment();
            return axi::WriteResp{axi::Resp::kOkay, req.id};
        }
        if (delta > 0) {
            // A gap: an earlier frame was lost. Reject so the sender
            // goes back and replays in order.
            ++outOfOrder_;
            if (stats_)
                stats_->counter("bridge.outOfOrder").increment();
            return axi::WriteResp{axi::Resp::kSlvErr, req.id};
        }
        state.expectedSeq += 1;
    } else {
        panicIf(req.data.size() < kFlitPayloadBytes,
                "bridge write smaller than three flits");
    }

    acceptFlits(src, valid_mask, req.data.data());
    if (stats_)
        stats_->counter("bridge.axiWritesReceived").increment();
    return axi::WriteResp{axi::Resp::kOkay, req.id};
}

void
InterNodeBridge::acceptFlits(NodeId src, std::uint8_t valid_mask,
                             const std::uint8_t *flit_bytes)
{
    SourceState &state = sources_[src];
    for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
        if (!(valid_mask & (1u << n)))
            continue;
        state.unreturned[n] += 1;
        panicIf(state.unreturned[n] > cfg_.creditsPerNoc,
                "bridge receive buffer overflow: credit protocol violated");
        std::uint64_t flit = 0;
        std::memcpy(&flit, flit_bytes + n * kFlitBytes, kFlitBytes);
        // The receive FIFO drains into packet reassembly at line rate,
        // freeing the credit immediately.
        state.assembly[n].push_back(flit);
        state.owedCredits[n] += 1;
        ++flitsReceived_;
        tryAssemble(src, static_cast<noc::NocIndex>(n));
    }
}

axi::ReadResp
InterNodeBridge::read(const axi::ReadReq &req)
{
    // Credit-return read: the requester (encoded in the address) collects
    // the credits freed since its last poll.
    Addr offset = req.addr - windowBase_;
    NodeId src;
    std::uint8_t valid_mask;
    decodeOffset(offset, src, valid_mask);

    SourceState &state = sources_[src];
    axi::ReadResp resp;
    resp.id = req.id;
    resp.data.resize(kCreditBytes + (reliable() ? 4 : 0));
    for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
        std::uint32_t owed = state.owedCredits[n];
        state.owedCredits[n] = 0;
        panicIf(owed > state.unreturned[n],
                "returning more credits than were consumed");
        state.unreturned[n] -= owed;
        std::memcpy(resp.data.data() + n * 4, &owed, 4);
    }
    if (reliable()) {
        std::uint32_t crc = creditCrc(resp.data.data(), src);
        std::memcpy(resp.data.data() + kCreditBytes, &crc, 4);
    }
    return resp;
}

void
InterNodeBridge::tryAssemble(NodeId src, noc::NocIndex noc_idx)
{
    SourceState &state = sources_[src];
    auto n = static_cast<std::size_t>(noc_idx);
    auto &buf = state.assembly[n];

    while (!buf.empty()) {
        // The first buffered word is always a packet header (flits of one
        // packet arrive contiguously per NoC by construction).
        std::uint64_t header = buf.front();
        auto payload_flits =
            static_cast<std::size_t>((header >> 10) & 0xff);
        std::size_t total = 2 + payload_flits;
        if (buf.size() < total)
            return;

        std::vector<std::uint64_t> words(
            buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(total));

        noc::Packet pkt = noc::deserializeWords(words);
        panicIf(pkt.dstNode != node_, "bridge received mis-routed packet");
        ++packetsDelivered_;
        if (stats_)
            stats_->counter("bridge.packetsDelivered").increment();
        if (tracer_) {
            obs::TraceEvent ev = obs::event(obs::EventKind::kBridgeRx);
            ev.cycle = eq_.now();
            ev.duration = static_cast<std::uint32_t>(cfg_.decapLatency);
            ev.arg = pkt.addr;
            ev.extra = static_cast<std::uint32_t>(total);
            ev.node = static_cast<std::uint16_t>(node_);
            ev.tile = static_cast<std::uint16_t>(src);
            ev.flags = 1;
            tracer_->record(ev);
        }
        if (deliver_) {
            eq_.schedule(cfg_.decapLatency,
                         [this, pkt = std::move(pkt)] { deliver_(pkt); });
        }
    }
}

std::uint32_t
InterNodeBridge::creditsAvailable(NodeId peer, noc::NocIndex noc_idx) const
{
    auto it = peers_.find(peer);
    panicIf(it == peers_.end(), "unknown peer");
    return it->second.credits[static_cast<std::size_t>(noc_idx)];
}

bool
InterNodeBridge::peerDegraded(NodeId peer) const
{
    auto it = peers_.find(peer);
    panicIf(it == peers_.end(), "unknown peer");
    return it->second.degraded;
}

bool
InterNodeBridge::sendIdle() const
{
    for (const auto &[dst, peer] : peers_) {
        if (!peer.replay.empty())
            return false;
        for (const auto &q : peer.outQueue) {
            if (!q.empty())
                return false;
        }
    }
    return true;
}

Cycles
InterNodeBridge::nextDeadline() const
{
    return sendIdle() ? sim::kNoDeadline : eq_.nextDeadline();
}

void
InterNodeBridge::saveState(snap::Writer &w) const
{
    w.u64(peers_.size());
    for (const auto &[dst, peer] : peers_) {
        w.u32(dst);
        w.u64(peer.windowBase);
        for (const auto &q : peer.outQueue) {
            w.u64(q.size());
            for (std::uint64_t flit : q)
                w.u64(flit);
        }
        for (std::uint32_t c : peer.credits)
            w.u32(c);
        w.boolean(peer.pollInFlight);
        w.u32(peer.nextSeq);
        w.u64(peer.replay.size());
        for (const PendingFrame &f : peer.replay) {
            w.u32(f.seq);
            w.u8(f.validMask);
            for (std::uint64_t flit : f.flits)
                w.u64(flit);
            w.u32(f.attempts);
        }
        w.u32(peer.backoffLevel);
        w.u32(peer.creditFailures);
        w.boolean(peer.degraded);
    }

    w.u64(sources_.size());
    for (const auto &[src, source] : sources_) {
        w.u32(src);
        for (const auto &q : source.assembly) {
            w.u64(q.size());
            for (std::uint64_t flit : q)
                w.u64(flit);
        }
        for (std::uint32_t c : source.owedCredits)
            w.u32(c);
        for (std::uint32_t c : source.unreturned)
            w.u32(c);
        w.u32(source.expectedSeq);
    }

    w.u64(flitsSent_);
    w.u64(flitsReceived_);
    w.u64(packetsDelivered_);
    w.u64(axiWritesSent_);
    w.u64(creditReadsSent_);
    w.u64(retransmits_);
    w.u64(crcErrors_);
    w.u64(duplicates_);
    w.u64(outOfOrder_);
    w.u64(creditTimeouts_);
    w.u64(degradeEvents_);
    w.u64(recoverEvents_);
}

void
InterNodeBridge::restoreState(snap::Reader &r)
{
    std::uint64_t peer_count = r.u64();
    fatalIf(peer_count != peers_.size(),
            strfmt("checkpoint bridge has %llu peers, live bridge has %llu",
                   static_cast<unsigned long long>(peer_count),
                   static_cast<unsigned long long>(peers_.size())));
    for (auto &[dst, peer] : peers_) {
        std::uint32_t saved_dst = r.u32();
        fatalIf(saved_dst != dst, "checkpoint bridge peer set mismatch");
        peer.windowBase = r.u64();
        for (auto &q : peer.outQueue) {
            q.clear();
            std::uint64_t depth = r.u64();
            for (std::uint64_t i = 0; i < depth; ++i)
                q.push_back(r.u64());
        }
        for (std::uint32_t &c : peer.credits)
            c = r.u32();
        peer.pollInFlight = r.boolean();
        peer.nextSeq = r.u32();
        peer.replay.clear();
        std::uint64_t frames = r.u64();
        for (std::uint64_t i = 0; i < frames; ++i) {
            PendingFrame f;
            f.seq = r.u32();
            f.validMask = r.u8();
            for (std::uint64_t &flit : f.flits)
                flit = r.u64();
            f.attempts = r.u32();
            peer.replay.push_back(f);
        }
        peer.backoffLevel = r.u32();
        peer.creditFailures = r.u32();
        peer.degraded = r.boolean();
        // Scheduling guards restart clean: the checkpoint was taken at a
        // quiescent point, so no pump/retransmit/poll closure existed.
        peer.retransmitScheduled = false;
        peer.probeScheduled = false;
    }

    std::uint64_t source_count = r.u64();
    fatalIf(
        source_count != sources_.size(),
        strfmt("checkpoint bridge has %llu sources, live bridge has %llu",
               static_cast<unsigned long long>(source_count),
               static_cast<unsigned long long>(sources_.size())));
    for (auto &[src, source] : sources_) {
        std::uint32_t saved_src = r.u32();
        fatalIf(saved_src != src, "checkpoint bridge source set mismatch");
        for (auto &q : source.assembly) {
            q.clear();
            std::uint64_t depth = r.u64();
            for (std::uint64_t i = 0; i < depth; ++i)
                q.push_back(r.u64());
        }
        for (std::uint32_t &c : source.owedCredits)
            c = r.u32();
        for (std::uint32_t &c : source.unreturned)
            c = r.u32();
        source.expectedSeq = r.u32();
    }

    flitsSent_ = r.u64();
    flitsReceived_ = r.u64();
    packetsDelivered_ = r.u64();
    axiWritesSent_ = r.u64();
    creditReadsSent_ = r.u64();
    retransmits_ = r.u64();
    crcErrors_ = r.u64();
    duplicates_ = r.u64();
    outOfOrder_ = r.u64();
    creditTimeouts_ = r.u64();
    degradeEvents_ = r.u64();
    recoverEvents_ = r.u64();

    pumpScheduled_ = false;
    // Re-arm the only events a quiescent bridge can owe: degraded-peer
    // probes. Queued traffic (if any) re-pumps on the next sendPacket or
    // credit return, as in a live run.
    for (auto &[dst, peer] : peers_) {
        if (peer.degraded)
            scheduleProbe(dst);
    }
}

} // namespace smappic::bridge
