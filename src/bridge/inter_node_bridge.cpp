#include "bridge/inter_node_bridge.hpp"

#include <cstring>

#include "sim/log.hpp"

namespace smappic::bridge
{

namespace
{

/** One AXI write carries up to one flit per physical NoC. */
constexpr std::uint32_t kFlitsPerWrite = noc::kNumNocs;
constexpr std::uint32_t kFlitBytes = 8;

} // namespace

InterNodeBridge::InterNodeBridge(NodeId node, FpgaId fpga, Addr window_base,
                                 sim::EventQueue &eq,
                                 pcie::PcieFabric &fabric,
                                 const BridgeConfig &cfg,
                                 sim::StatRegistry *stats)
    : node_(node), fpga_(fpga), windowBase_(window_base), eq_(eq),
      fabric_(fabric), cfg_(cfg), stats_(stats)
{
    fatalIf(cfg.creditsPerNoc == 0, "bridge needs at least one credit");
    fabric_.addWindow(window_base, cfg.windowSize, this, fpga,
                      strfmt("bridge.node%u", node));
}

void
InterNodeBridge::addPeer(NodeId node, Addr window_base)
{
    fatalIf(node == node_, "bridge cannot peer with itself");
    PeerState &peer = peers_[node];
    peer.windowBase = window_base;
    peer.credits.fill(cfg_.creditsPerNoc);
}

Addr
InterNodeBridge::encodeOffset(NodeId src, std::uint8_t valid_mask)
{
    // Offset layout within the destination window:
    //   [19:12] source node-ID, [10:8] flit valid bits, [7:0] zero.
    return (static_cast<Addr>(src) << 12) |
           (static_cast<Addr>(valid_mask & 0x7) << 8);
}

void
InterNodeBridge::decodeOffset(Addr offset, NodeId &src,
                              std::uint8_t &valid_mask)
{
    src = static_cast<NodeId>((offset >> 12) & 0xff);
    valid_mask = static_cast<std::uint8_t>((offset >> 8) & 0x7);
}

void
InterNodeBridge::sendPacket(const noc::Packet &pkt)
{
    panicIf(pkt.dstNode == node_, "bridge asked to send a local packet");
    auto it = peers_.find(pkt.dstNode);
    panicIf(it == peers_.end(), "bridge has no peer for destination node");
    auto noc_idx = static_cast<std::size_t>(pkt.noc);
    for (const noc::Flit &f : serialize(pkt))
        it->second.outQueue[noc_idx].push_back(f.data);
    schedulePump();
}

void
InterNodeBridge::schedulePump()
{
    if (pumpScheduled_)
        return;
    pumpScheduled_ = true;
    eq_.schedule(1, [this] {
        pumpScheduled_ = false;
        pump();
    });
}

void
InterNodeBridge::pump()
{
    bool work_left = false;
    for (auto &[dst, peer] : peers_) {
        // Form one AXI4 write per destination per cycle carrying up to one
        // flit from each physical NoC, credits permitting.
        std::uint8_t valid_mask = 0;
        std::array<std::uint64_t, kFlitsPerWrite> flits{};
        for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
            if (peer.outQueue[n].empty())
                continue;
            if (peer.credits[n] == 0) {
                // Stalled on credits: make sure a poll is pending.
                scheduleCreditPoll(dst);
                continue;
            }
            flits[n] = peer.outQueue[n].front();
            peer.outQueue[n].pop_front();
            peer.credits[n] -= 1;
            valid_mask |= static_cast<std::uint8_t>(1u << n);
        }

        if (valid_mask != 0) {
            axi::WriteReq req;
            req.addr = peer.windowBase + encodeOffset(node_, valid_mask);
            req.data.resize(kFlitsPerWrite * kFlitBytes);
            std::memcpy(req.data.data(), flits.data(), req.data.size());
            fabric_.write(fpga_, std::move(req), nullptr);
            ++axiWritesSent_;
            flitsSent_ += __builtin_popcount(valid_mask);
            if (stats_) {
                stats_->counter("bridge.axiWrites").increment();
                stats_->counter("bridge.flitsSent")
                    .increment(__builtin_popcount(valid_mask));
            }
        }

        for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
            if (!peer.outQueue[n].empty())
                work_left = true;
        }
    }
    if (work_left)
        schedulePump();
}

void
InterNodeBridge::scheduleCreditPoll(NodeId peer_id)
{
    PeerState &peer = peers_.at(peer_id);
    if (peer.pollInFlight)
        return;
    peer.pollInFlight = true;
    ++creditReadsSent_;
    if (stats_)
        stats_->counter("bridge.creditReads").increment();

    eq_.schedule(cfg_.creditPollInterval, [this, peer_id] {
        PeerState &p = peers_.at(peer_id);
        axi::ReadReq req;
        req.addr = p.windowBase + encodeOffset(node_, 0);
        req.bytes = noc::kNumNocs * 4;
        fabric_.read(fpga_, req, [this, peer_id](pcie::Completion c) {
            PeerState &p = peers_.at(peer_id);
            p.pollInFlight = false;
            if (c.resp != axi::Resp::kOkay ||
                c.data.size() < noc::kNumNocs * 4) {
                // Transient fabric error: retry while traffic is pending
                // so a single failed credit read cannot wedge the link.
                for (const auto &q : p.outQueue) {
                    if (!q.empty()) {
                        scheduleCreditPoll(peer_id);
                        break;
                    }
                }
                return;
            }
            bool gained = false;
            for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
                std::uint32_t returned = 0;
                std::memcpy(&returned, c.data.data() + n * 4, 4);
                p.credits[n] += returned;
                panicIf(p.credits[n] > cfg_.creditsPerNoc,
                        "credit overflow: receiver returned too many");
                gained = gained || returned > 0;
            }
            bool pending = false;
            for (const auto &q : p.outQueue)
                pending = pending || !q.empty();
            if (gained && pending)
                schedulePump();
            if (pending) {
                // Keep polling while traffic is stalled.
                bool starved = false;
                for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
                    starved = starved ||
                              (!p.outQueue[n].empty() && p.credits[n] == 0);
                }
                if (starved)
                    scheduleCreditPoll(peer_id);
            }
        });
    });
}

axi::WriteResp
InterNodeBridge::write(const axi::WriteReq &req)
{
    Addr offset = req.addr - windowBase_;
    NodeId src;
    std::uint8_t valid_mask;
    decodeOffset(offset, src, valid_mask);
    panicIf(req.data.size() < kFlitsPerWrite * kFlitBytes,
            "bridge write smaller than three flits");

    SourceState &state = sources_[src];
    for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
        if (!(valid_mask & (1u << n)))
            continue;
        state.unreturned[n] += 1;
        panicIf(state.unreturned[n] > cfg_.creditsPerNoc,
                "bridge receive buffer overflow: credit protocol violated");
        std::uint64_t flit = 0;
        std::memcpy(&flit, req.data.data() + n * kFlitBytes, kFlitBytes);
        // The receive FIFO drains into packet reassembly at line rate,
        // freeing the credit immediately.
        state.assembly[n].push_back(flit);
        state.owedCredits[n] += 1;
        ++flitsReceived_;
        tryAssemble(src, static_cast<noc::NocIndex>(n));
    }
    if (stats_)
        stats_->counter("bridge.axiWritesReceived").increment();
    return axi::WriteResp{axi::Resp::kOkay, req.id};
}

axi::ReadResp
InterNodeBridge::read(const axi::ReadReq &req)
{
    // Credit-return read: the requester (encoded in the address) collects
    // the credits freed since its last poll.
    Addr offset = req.addr - windowBase_;
    NodeId src;
    std::uint8_t valid_mask;
    decodeOffset(offset, src, valid_mask);

    SourceState &state = sources_[src];
    axi::ReadResp resp;
    resp.id = req.id;
    resp.data.resize(noc::kNumNocs * 4);
    for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
        std::uint32_t owed = state.owedCredits[n];
        state.owedCredits[n] = 0;
        panicIf(owed > state.unreturned[n],
                "returning more credits than were consumed");
        state.unreturned[n] -= owed;
        std::memcpy(resp.data.data() + n * 4, &owed, 4);
    }
    return resp;
}

void
InterNodeBridge::tryAssemble(NodeId src, noc::NocIndex noc_idx)
{
    SourceState &state = sources_[src];
    auto n = static_cast<std::size_t>(noc_idx);
    auto &buf = state.assembly[n];

    while (!buf.empty()) {
        // The first buffered word is always a packet header (flits of one
        // packet arrive contiguously per NoC by construction).
        std::uint64_t header = buf.front();
        auto payload_flits =
            static_cast<std::size_t>((header >> 10) & 0xff);
        std::size_t total = 2 + payload_flits;
        if (buf.size() < total)
            return;

        std::vector<std::uint64_t> words(
            buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(total));

        noc::Packet pkt = noc::deserializeWords(words);
        panicIf(pkt.dstNode != node_, "bridge received mis-routed packet");
        ++packetsDelivered_;
        if (stats_)
            stats_->counter("bridge.packetsDelivered").increment();
        if (deliver_) {
            eq_.schedule(cfg_.decapLatency,
                         [this, pkt = std::move(pkt)] { deliver_(pkt); });
        }
    }
}

std::uint32_t
InterNodeBridge::creditsAvailable(NodeId peer, noc::NocIndex noc_idx) const
{
    auto it = peers_.find(peer);
    panicIf(it == peers_.end(), "unknown peer");
    return it->second.credits[static_cast<std::size_t>(noc_idx)];
}

bool
InterNodeBridge::sendIdle() const
{
    for (const auto &[dst, peer] : peers_) {
        for (const auto &q : peer.outQueue) {
            if (!q.empty())
                return false;
        }
    }
    return true;
}

} // namespace smappic::bridge
