/**
 * @file
 * Packet-level assembly of one SMAPPIC node: the three physical mesh
 * NoCs, the off-chip hub ("chipset" in BYOC terms) that steers northbound
 * traffic, the NoC-AXI4 memory controller behind it, and — when the node
 * is part of a multi-node prototype — the inter-node bridge.
 *
 * This is the cycle-accurate counterpart of the transaction-level path in
 * cache::CoherentSystem: the same protocol elements, executed as actual
 * flits through actual routers. The platform uses it for I/O-class
 * traffic and for validation (tests drive memory transactions through the
 * full flit-level stack and compare against the transaction model's
 * structure); figure benches use the calibrated transaction model.
 */

#pragma once

#include <array>
#include <functional>
#include <memory>

#include "bridge/inter_node_bridge.hpp"
#include "mem/noc_axi_memctrl.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace smappic::platform
{

/** One node's packet-level interconnect complex. */
class NodeChipset
{
  public:
    using TileFn = std::function<void(const noc::Packet &)>;

    /**
     * @param node This node's id.
     * @param eq Event queue shared with the memory controller/bridge.
     * @param memctrl The node's NoC-AXI4 memory controller.
     * @param bridge Inter-node bridge, or nullptr for single-node setups.
     */
    NodeChipset(NodeId node, std::uint32_t tiles_per_node,
                sim::EventQueue &eq, mem::NocAxiMemController &memctrl,
                bridge::InterNodeBridge *bridge);

    /** Registers the sink for packets delivered to @p tile. */
    void setTileDeliverFn(TileId tile, TileFn fn);

    /** Attaches the platform tracer to all three mesh networks. */
    void setTracer(obs::Tracer *tracer);

    /** Injects a packet at its source tile on the network pkt.noc names. */
    void injectFromTile(const noc::Packet &pkt);

    /**
     * Advances the chipset one cycle: ticks all three networks and runs
     * the event queue up to the new local time.
     */
    void tick();

    /**
     * Runs until all networks drain and the queue empties (bounded).
     * With idle skip on (default), spans where every mesh is drained and
     * the next device event is cycles away are crossed in one bulk clock
     * advance instead of cycle-by-cycle ticking — exactly equivalent,
     * since an idle mesh tick only moves the clock and events still fire
     * at their scheduled cycles, in their scheduled order.
     */
    bool runUntilIdle(Cycles max_cycles = 100000);

    /** Gates the runUntilIdle() bulk advance (PrototypeConfig::
     *  uncore.idleSkip equivalent for standalone chipsets). */
    void setIdleSkip(bool on) { idleSkip_ = on; }

    noc::MeshNetwork &network(noc::NocIndex idx)
    {
        return *nets_[static_cast<std::size_t>(idx)];
    }

    NodeId node() const { return node_; }
    Cycles now() const { return clock_; }

    std::uint64_t packetsToMemory() const { return toMemory_; }
    std::uint64_t packetsToBridge() const { return toBridge_; }
    std::uint64_t packetsFromOffChip() const { return fromOffChip_; }

  private:
    void hubDeliver(const noc::Packet &pkt);
    void intoMesh(const noc::Packet &pkt);

    NodeId node_;
    sim::EventQueue &eq_;
    mem::NocAxiMemController &memctrl_;
    bridge::InterNodeBridge *bridge_;

    std::array<std::unique_ptr<noc::MeshNetwork>, noc::kNumNocs> nets_;
    Cycles clock_ = 0;
    bool idleSkip_ = true;
    std::uint64_t toMemory_ = 0;
    std::uint64_t toBridge_ = 0;
    std::uint64_t fromOffChip_ = 0;
};

} // namespace smappic::platform
