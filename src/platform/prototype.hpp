/**
 * @file
 * The SMAPPIC prototype: the user-facing assembly of the whole platform.
 *
 * A prototype is described in the paper's AxBxC notation — A FPGAs, B
 * nodes per FPGA, C tiles per node — and contains:
 *   - the coherent multi-node memory system (BYOC nodes + SMAPPIC
 *     inter-node interconnect timing),
 *   - one RV64 core per tile wired to that memory system,
 *   - the F1 substrate: PCIe fabric, per-node inter-node bridges,
 *     per-node NoC-AXI4 memory controllers and DRAM channels,
 *   - I/O: two UARTs per node (console + overclocked data), the CLINT
 *     interrupt controller with packetizer delivery, and a virtual SD
 *     card in the top half of each node's DRAM.
 *
 * Users pick a configuration string ("4x1x12"), load a program and run —
 * mirroring the build-scripts-only flow the paper advertises.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/gng.hpp"
#include "accel/maple.hpp"
#include "bridge/inter_node_bridge.hpp"
#include "cache/coherent_system.hpp"
#include "check/coherence_checker.hpp"
#include "check/lockstep.hpp"
#include "io/sd_card.hpp"
#include "io/uart16550.hpp"
#include "mem/axi_dram.hpp"
#include "mem/noc_axi_memctrl.hpp"
#include "obs/tracer.hpp"
#include "os/guest_system.hpp"
#include "pcie/pcie_fabric.hpp"
#include "riscv/assembler.hpp"
#include "sim/fault.hpp"
#include "riscv/core.hpp"
#include "riscv/core_models.hpp"
#include "riscv/interrupts.hpp"
#include "riscv/plic.hpp"
#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"
#include "sim/watchdog.hpp"
#include "snap/snapshot.hpp"

namespace smappic::platform
{

// Fixed MMIO map (per node where applicable).
inline constexpr Addr kClintBase = 0x02000000;
inline constexpr std::uint64_t kClintSize = 0x10000;
inline constexpr Addr kUartBase = 0x10000000;
inline constexpr std::uint64_t kUartStride = 0x1000; ///< Console, data...
inline constexpr std::uint64_t kUartNodeStride = 0x10000;
inline constexpr Addr kPlicBase = 0x0c000000;
inline constexpr std::uint64_t kPlicSize = 0x400000;
inline constexpr Addr kSdMmioBase = 0x03000000;
inline constexpr std::uint64_t kSdMmioStride = 0x1000;
inline constexpr Addr kAccelBase = 0xf0000000;
inline constexpr std::uint64_t kAccelStride = 0x10000;
inline constexpr Addr kDramBase = 0x80000000;

/** AxBxC prototype description. */
struct PrototypeConfig
{
    std::uint32_t fpgas = 1;        ///< A.
    std::uint32_t nodesPerFpga = 1; ///< B.
    std::uint32_t tilesPerNode = 2; ///< C.
    std::uint64_t memPerNode = 256ULL << 20;
    /** LLC slice capacity (Table 2 default; benches scale it with their
     *  scaled-down working sets to preserve the paper's ws:LLC regime). */
    std::uint64_t llcSliceBytes = 64 << 10;
    bool interNodeInterconnect = true;
    riscv::CoreModel coreModel = riscv::CoreModel::kAriane;
    cache::HomingPolicy homing = cache::HomingPolicy::kAddressNode;
    cache::TimingParams timing;
    std::uint64_t seed = 1;
    /** Host-side core tuning that is observably invisible to the guest. */
    struct CoreTuning
    {
        /**
         * Per-core decoded-instruction cache (riscv/decode_cache.hpp).
         * On by default: it is timing-neutral by construction — stats,
         * traces and checkpoints are byte-identical either way — so it
         * is deliberately excluded from configFingerprint() and
         * checkpoints interchange freely between on and off.
         */
        riscv::DecodeCacheConfig decodeCache;
        /**
         * L1D hit fast path for aligned scalar loads and BPC-M-state
         * stores (CoherentSystem::loadFastHit/storeFastHit). On by
         * default under the same contract as the decode cache: it is
         * timing-neutral by construction — stats, traces and
         * checkpoints are byte-identical either way — so it is
         * deliberately excluded from configFingerprint() and
         * checkpoints interchange freely between on and off.
         */
        bool dataFastPath = true;
    };
    CoreTuning core;
    /** Host-side uncore tuning that is observably invisible to the
     *  guest (the uncore counterpart of CoreTuning). */
    struct UncoreTuning
    {
        /**
         * Event-horizon idle skipping for the uncore. WFI waits
         * fast-forward shared device time (CLINT mtime + the event
         * queue, in lockstep) straight to the next timer/event horizon
         * instead of polling cycle by cycle, and the phased engine
         * jumps runs of provably inert quantum barriers to the first
         * barrier at which any component could change observable state.
         * On by default under the same contract as the core fast paths:
         * a skipped cycle is one in which nothing could have happened,
         * so stats, traces and checkpoints are byte-identical either
         * way — deliberately excluded from configFingerprint() so
         * checkpoints interchange freely between on and off.
         */
        bool idleSkip = true;
    };
    UncoreTuning uncore;
    /** Transient-fault schedule injected into the substrate (PCIe fabric,
     *  bridges, DRAM path). Empty = no injector is built, zero cost. */
    sim::FaultPlan faultPlan;
    /** Reliable inter-node link layer (CRC + replay); see
     *  bridge::ReliabilityConfig. Off by default. */
    bridge::ReliabilityConfig reliability;
    /**
     * Parallel execution engine. The default ({threads = 1, quantum = 0})
     * keeps today's sequential cycle-interleaved runCores() exactly.
     * threads > 1 or quantum > 0 selects the phased engine: nodes advance
     * in quanta bounded by the PCIe one-way lookahead and exchange
     * cross-node traffic at quantum boundaries; results are bit-identical
     * for any thread count on node-partitioned workloads (see
     * docs/INTERNALS.md).
     */
    sim::ParallelConfig parallel;
    /** Online coherence invariant checker (src/check/). Off by default;
     *  when enabled the prototype owns a CoherenceChecker observing every
     *  protocol transition of the memory system. */
    check::CheckConfig check;
    /**
     * Golden-model lock-step differential checker (src/check/lockstep).
     * Off by default; when enabled the prototype owns a LockstepChecker
     * replaying every core's commits on per-hart golden interpreters.
     * memBase/memSize == 0 auto-sizes to the platform's DRAM window.
     * Purely observational — timing, stats (absent divergences), traces
     * and checkpoint bytes are unchanged — but incompatible with
     * checkpoint restore (the golden image cannot be reconstructed).
     */
    check::LockstepConfig lockstep;
    /** Cycle-accurate event tracing (src/obs/). Off by default; when
     *  enabled every selected component records into per-node ring
     *  buffers merged deterministically (see docs/INTERNALS.md). */
    obs::TraceConfig trace;
    /**
     * Periodic quantum-barrier checkpoints (src/snap/). interval = 0
     * disables them. Checkpoints are only taken by the phased engine at
     * quantum barriers, after the platform quiesces, so the set of
     * checkpoint cycles — and the files' bytes — is a pure function of
     * (config, workload), never of the worker count.
     */
    snap::SnapshotConfig snapshot;
    /** No-commit-progress watchdog over the phased engine
     *  (src/sim/watchdog.hpp). stallCycles = 0 disables it; the action
     *  selects report / panic / rollback-recovery on a stalled node. */
    sim::WatchdogConfig watchdog;

    /** Parses "AxBxC" (e.g. "4x1x12"). @throws FatalError on bad input. */
    static PrototypeConfig parse(const std::string &spec);

    std::uint32_t totalNodes() const { return fpgas * nodesPerFpga; }
    std::uint32_t totalTiles() const
    {
        return totalNodes() * tilesPerNode;
    }
    std::string name() const;
};

/** One fully wired prototype. */
class Prototype
{
  public:
    explicit Prototype(const PrototypeConfig &cfg);
    ~Prototype();

    Prototype(const Prototype &) = delete;
    Prototype &operator=(const Prototype &) = delete;

    const PrototypeConfig &config() const { return cfg_; }
    cache::CoherentSystem &memorySystem() { return *cs_; }
    mem::MainMemory &memory() { return cs_->memory(); }
    sim::StatRegistry &stats() { return stats_; }
    sim::EventQueue &eventQueue() { return eq_; }
    pcie::PcieFabric &fabric() { return *fabric_; }
    /** Null when the config's fault plan is empty. */
    sim::FaultInjector *faultInjector() { return faultInjector_.get(); }
    /** Null unless config().check.enabled. */
    check::CoherenceChecker *checker() { return checker_.get(); }
    /** Null unless config().lockstep.enabled. */
    check::LockstepChecker *lockstep() { return lockstep_.get(); }
    /** The platform tracer (inert unless config().trace.enabled). */
    obs::Tracer &tracer() { return tracer_; }
    const obs::Tracer &tracer() const { return tracer_; }

    /**
     * Writes the recorded trace in the compact binary format (see
     * obs/trace_io.hpp). @p path defaults to config().trace.path.
     * @throws FatalError when the file cannot be written or tracing is
     * disabled.
     */
    void writeTrace(const std::string &path = "") const;
    bridge::InterNodeBridge &bridge(NodeId n) { return *bridges_.at(n); }
    mem::NocAxiMemController &memController(NodeId n)
    {
        return *memctrls_.at(n);
    }
    riscv::ClintController &clint() { return *clint_; }
    riscv::PlicController &plic() { return *plic_; }
    io::Uart16550 &consoleUart(NodeId n) { return *uarts_.at(n * 2); }
    io::Uart16550 &dataUart(NodeId n) { return *uarts_.at(n * 2 + 1); }
    io::VirtualSerial &console(NodeId n) { return serials_.at(n); }
    io::VirtualSdCard &sdCard(NodeId n) { return *sdCards_.at(n); }

    riscv::RvCore &core(GlobalTileId gid) { return *cores_.at(gid); }
    std::uint32_t coreCount() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

    /** Optional accelerators (paper sections 4.2/4.3). */
    accel::GngAccelerator &addGng(GlobalTileId tile);
    accel::MapleEngine &addMaple(GlobalTileId tile);

    /** GNG/MAPLE MMIO window base for @p tile (after addGng/addMaple). */
    Addr accelWindow(GlobalTileId tile) const;

    /** Loads an assembled program into physical memory. */
    void loadProgram(const riscv::Program &prog);

    /** Assembles and loads; returns the program for symbol lookups. */
    riscv::Program loadSource(const std::string &source);

    /**
     * Assembles once and loads one copy into *every* node's DRAM (at the
     * node's channel base), pointing each core at its own node's copy.
     * The assembler's `la` is PC-relative, so data references resolve to
     * the node-local replica — the preferred loader for the phased
     * engine, where per-node code/data keeps instruction fetches from
     * crossing nodes.
     */
    riscv::Program loadSourceReplicated(const std::string &source);

    /**
     * Runs one core until exit/budget, pumping the device event queue in
     * step with the core clock.
     * @return The core's halt reason.
     */
    riscv::HaltReason runCore(GlobalTileId gid,
                              std::uint64_t max_instructions = 50'000'000);

    /**
     * Runs several cores concurrently until all exit or every core
     * consumes its budget. With the default config this is the
     * sequential cycle-interleaved engine; with config().parallel active
     * it is the phased engine (per-node quanta, conservative barrier
     * sync, optional worker threads).
     */
    void runCores(const std::vector<GlobalTileId> &gids,
                  std::uint64_t max_instructions_each = 50'000'000);

    /** Creates a guest-OS model on top of this prototype's memory. */
    std::unique_ptr<os::GuestSystem> makeGuest(os::NumaMode mode,
                                               std::uint64_t seed = 1);

    /**
     * Fig. 7 probe: round-trip latency in cycles from @p from to a cache
     * line homed at @p to, measured with cold private caches and a warm
     * home LLC.
     */
    Cycles measureRoundTrip(GlobalTileId from, GlobalTileId to);

    /** Physical address in @p to's node whose home tile is @p to. */
    Addr addressHomedAt(GlobalTileId to) const;

    /**
     * Writes a full-system SMCK checkpoint to @p path. The platform must
     * be able to quiesce: every pending device event is drained first
     * (advancing virtual time past the last one), and the call fatals
     * when the queue refuses to drain — e.g. while a degraded peer's
     * probe loop is re-arming itself.
     */
    void checkpoint(const std::string &path);

    /**
     * Restores a checkpoint written by an identically configured
     * prototype (the header's config hash is checked first). Every
     * component's state is overwritten; a subsequent runCores() with the
     * same core set continues the interrupted run — the phased engine
     * picks per-core budgets and the barrier clock out of the
     * checkpoint's resume section.
     */
    void restore(const std::string &path);

    /** Installs a hook called at every phased-engine quantum barrier
     *  (serial context, after the auto-checkpoint point) with the
     *  boundary cycle. Used by snap_ctl --kill-at and the crash-recovery
     *  tests. */
    void setBarrierProbe(std::function<void(Cycles)> fn)
    {
        barrierProbe_ = std::move(fn);
    }

    /** FNV-1a fingerprint of the shape-relevant config fields, stored in
     *  every checkpoint header and verified on restore. Worker-thread
     *  count is deliberately excluded: any worker count must accept any
     *  worker count's checkpoints. */
    std::uint64_t configFingerprint() const;

  private:
    class CorePort;
    struct PhasedLive; ///< Live phased-run state visible to checkpoint().

    /** Applies an interrupt packet to its destination core (serial
     *  context or same-node phase only). */
    void deliverIrqPacket(const noc::Packet &pkt);

    /** Phased engine behind runCores() when config().parallel is active. */
    void runCoresPhased(const std::vector<GlobalTileId> &gids,
                        std::uint64_t max_instructions_each);

    /**
     * Advances shared device time (CLINT mtime and the event queue, in
     * lockstep) until @p woke returns true, the cumulative wait reaches
     * the WFI wait budget, or no horizon remains (no armed timer and an
     * empty event queue — nothing can ever fire). Nothing observable can
     * change strictly between two horizons, so with uncore.idleSkip on
     * the span is crossed in one jump; off, it is walked cycle by cycle
     * with @p woke polled each cycle. Both paths cross every horizon at
     * the same mtime/queue times and therefore fire the same events and
     * wire transitions in the same order.
     * @return The final value of @p woke.
     */
    bool waitForWake(const std::function<bool()> &woke);

    /** Drains the mailbox and every pending device event, advancing
     *  virtual time. @return False when more than @p max_events events
     *  fire without the queue emptying (a self-re-arming loop). */
    bool quiesce(std::uint64_t max_events);

    /** Serializes the whole platform; requires an empty event queue. */
    void writeCheckpoint(const std::string &path);

    /** Quiesce + checkpoint for the periodic hook: a quiesce failure
     *  warns and counts snap.skipped instead of dying. */
    bool tryCheckpoint(const std::string &path);

    /** Phased-run bookkeeping recovered from a checkpoint's resume
     *  section, consumed by the next runCoresPhased(). */
    struct PhasedResume
    {
        bool valid = false;
        /** Barrier the checkpoint was taken at (resume continues at
         *  boundary + quantum). */
        Cycles boundary = 0;
        std::uint64_t idleEpochs = 0;
        std::vector<GlobalTileId> gids;
        std::vector<std::uint64_t> executed;
        std::vector<std::uint8_t> done;
        std::vector<std::uint8_t> parked;
        std::vector<sim::StatRegistry> shards;
    };

    PrototypeConfig cfg_;
    sim::StatRegistry stats_;
    sim::EventQueue eq_;
    sim::MailboxRouter router_;
    obs::Tracer tracer_;

    std::unique_ptr<cache::CoherentSystem> cs_;
    std::unique_ptr<check::CoherenceChecker> checker_;
    std::unique_ptr<check::LockstepChecker> lockstep_;
    std::unique_ptr<sim::FaultInjector> faultInjector_;
    std::unique_ptr<pcie::PcieFabric> fabric_;
    std::vector<std::unique_ptr<bridge::InterNodeBridge>> bridges_;
    std::vector<std::unique_ptr<mem::AxiDram>> drams_;
    std::vector<std::unique_ptr<mem::NocAxiMemController>> memctrls_;
    std::vector<std::unique_ptr<io::Uart16550>> uarts_;
    std::vector<io::VirtualSerial> serials_;
    std::vector<std::unique_ptr<io::VirtualSdCard>> sdCards_;
    std::unique_ptr<riscv::ClintController> clint_;
    std::unique_ptr<riscv::PlicController> plic_;
    std::unique_ptr<riscv::IrqPacketizer> packetizer_;

    std::vector<std::unique_ptr<CorePort>> ports_;
    std::vector<std::unique_ptr<riscv::RvCore>> cores_;

    std::vector<std::unique_ptr<cache::NcDevice>> ncAdapters_;
    std::vector<std::unique_ptr<axi::Target>> fabricAdapters_;
    Cycles probeClock_ = 0;
    PhasedResume resume_;
    PhasedLive *live_ = nullptr; ///< Non-null only inside runCoresPhased.
    std::function<void(Cycles)> barrierProbe_;
    std::vector<std::unique_ptr<accel::GngAccelerator>> gngs_;
    std::vector<std::unique_ptr<accel::MapleEngine>> maples_;
    std::vector<std::pair<GlobalTileId, Addr>> accelWindows_;
};

} // namespace smappic::platform
