#include "platform/tri.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace smappic::platform
{

TriResponse
TriPort::request(const TriRequest &req, Cycles now)
{
    ++transactions_;
    cache::AccessType type;
    switch (req.op) {
      case TriOp::kLoad:
        type = cache::AccessType::kLoad;
        break;
      case TriOp::kStore:
        type = cache::AccessType::kStore;
        break;
      case TriOp::kIfill:
        type = cache::AccessType::kFetch;
        break;
      case TriOp::kAmo:
        type = cache::AccessType::kAtomic;
        break;
      case TriOp::kNcLoad:
        type = cache::AccessType::kNcLoad;
        break;
      case TriOp::kNcStore:
        type = cache::AccessType::kNcStore;
        break;
      default:
        panic("unknown TRI op");
    }

    TriResponse resp;
    std::uint32_t data_bytes = std::min(req.bytes, 8u);
    if (req.op == TriOp::kStore || req.op == TriOp::kNcStore) {
        // Data lands in the functional store before the device/coherence
        // walk so NC windows observe the new value.
        cs_.memory().store(req.addr, data_bytes, req.data);
    }
    auto r = cs_.access(tile_, req.addr, type, req.bytes, now);
    resp.latency = r.latency;
    resp.level = r.level;
    if (req.op == TriOp::kAmo) {
        resp.data = cs_.memory().load(req.addr, data_bytes);
        cs_.memory().store(req.addr, data_bytes, req.data);
    } else if (req.op != TriOp::kStore && req.op != TriOp::kNcStore) {
        resp.data = cs_.memory().load(req.addr, data_bytes);
    }
    return resp;
}

Cycles
TraceCore::run(TriPort &port, Cycles start)
{
    responses_.clear();
    responses_.reserve(trace_.size());
    memCycles_ = 0;
    Cycles now = start;
    for (const Entry &e : trace_) {
        now += e.gap;
        TriRequest req;
        req.op = e.op;
        req.addr = e.addr;
        req.bytes = e.bytes;
        req.data = e.data;
        TriResponse r = port.request(req, now);
        now += r.latency;
        memCycles_ += r.latency;
        responses_.push_back(r);
    }
    return now;
}

} // namespace smappic::platform
