/**
 * @file
 * The Transaction-Response Interface (TRI).
 *
 * TRI is BYOC's gateway between a compute unit and the memory system
 * (paper section 2.2): it isolates cores from the coherence protocol's
 * details so that new cores and accelerators can be integrated without
 * touching the cache subsystem — the reason ten different cores plug into
 * the framework. This module provides the same boundary for this
 * platform: a typed request/response transaction API bound to a tile,
 * an abstract TriClient for custom compute units, and a trace-replay
 * client that drives memory traces through the interface (the minimal
 * "bring your own core").
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/coherent_system.hpp"
#include "sim/types.hpp"

namespace smappic::platform
{

/** TRI transaction types (the BYOC request classes). */
enum class TriOp : std::uint8_t
{
    kLoad,     ///< Cacheable read.
    kStore,    ///< Cacheable write.
    kIfill,    ///< Instruction fill.
    kAmo,      ///< Atomic (performed at the home LLC).
    kNcLoad,   ///< Non-cacheable read.
    kNcStore,  ///< Non-cacheable write.
};

/** One TRI request. */
struct TriRequest
{
    TriOp op = TriOp::kLoad;
    Addr addr = 0;
    std::uint32_t bytes = 8;
    std::uint64_t data = 0; ///< Store/AMO payload.
};

/** The matching response. */
struct TriResponse
{
    std::uint64_t data = 0; ///< Load result / AMO old value.
    Cycles latency = 0;
    cache::ServiceLevel level = cache::ServiceLevel::kL1;
};

/**
 * A TRI endpoint bound to one tile: custom compute units issue requests
 * here and never see the coherence protocol.
 */
class TriPort
{
  public:
    TriPort(cache::CoherentSystem &cs, GlobalTileId tile)
        : cs_(cs), tile_(tile)
    {
    }

    /** Issues one transaction at time @p now. */
    TriResponse request(const TriRequest &req, Cycles now);

    GlobalTileId tile() const { return tile_; }
    std::uint64_t transactions() const { return transactions_; }

  private:
    cache::CoherentSystem &cs_;
    GlobalTileId tile_;
    std::uint64_t transactions_ = 0;
};

/** A compute unit that runs against a TriPort. */
class TriClient
{
  public:
    virtual ~TriClient() = default;

    /**
     * Runs the unit to completion against @p port starting at @p start.
     * @return Finish time in cycles.
     */
    virtual Cycles run(TriPort &port, Cycles start) = 0;

    /** Short name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Trace-replay compute unit: the minimal custom core. Replays a memory
 * trace (op, address, inter-request compute gap) through TRI, which is
 * how non-RTL performance models are typically attached to prototypes.
 */
class TraceCore : public TriClient
{
  public:
    struct Entry
    {
        TriOp op = TriOp::kLoad;
        Addr addr = 0;
        std::uint32_t bytes = 8;
        std::uint64_t data = 0;
        Cycles gap = 1; ///< Compute cycles before this request.
    };

    explicit TraceCore(std::vector<Entry> trace, std::string name = "trace")
        : trace_(std::move(trace)), name_(std::move(name))
    {
    }

    Cycles run(TriPort &port, Cycles start) override;
    std::string name() const override { return name_; }

    /** Per-entry responses recorded during the last run. */
    const std::vector<TriResponse> &responses() const { return responses_; }

    /** Aggregate memory stall cycles of the last run. */
    Cycles memoryCycles() const { return memCycles_; }

  private:
    std::vector<Entry> trace_;
    std::string name_;
    std::vector<TriResponse> responses_;
    Cycles memCycles_ = 0;
};

} // namespace smappic::platform
