#include "platform/node_chipset.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace smappic::platform
{

NodeChipset::NodeChipset(NodeId node, std::uint32_t tiles_per_node,
                         sim::EventQueue &eq,
                         mem::NocAxiMemController &memctrl,
                         bridge::InterNodeBridge *bridge)
    : node_(node), eq_(eq), memctrl_(memctrl), bridge_(bridge)
{
    for (std::size_t n = 0; n < noc::kNumNocs; ++n) {
        nets_[n] = std::make_unique<noc::MeshNetwork>(
            noc::MeshTopology(tiles_per_node));
        nets_[n]->setLocalNode(node);
        // Northbound traffic out of tile 0 reaches the hub; steer it.
        nets_[n]->setDeliverFn(noc::kOffChipTile,
                               [this](const noc::Packet &pkt) {
                                   hubDeliver(pkt);
                               });
    }

    // Memory controller responses re-enter the mesh on their network.
    memctrl_.setSendFn([this](const noc::Packet &pkt) { intoMesh(pkt); });

    // Bridge deliveries (packets arriving from other nodes) re-enter the
    // mesh toward their destination tile, or terminate at the memory
    // controller for remote memory accesses.
    if (bridge_) {
        bridge_->setDeliverFn([this](const noc::Packet &pkt) {
            panicIf(pkt.dstNode != node_,
                    "chipset received another node's packet");
            ++fromOffChip_;
            if (pkt.dstTile == noc::kOffChipTile) {
                ++toMemory_;
                memctrl_.handlePacket(pkt);
            } else {
                intoMesh(pkt);
            }
        });
    }
}

void
NodeChipset::setTracer(obs::Tracer *tracer)
{
    for (auto &net : nets_)
        net->setTracer(tracer);
}

void
NodeChipset::setTileDeliverFn(TileId tile, TileFn fn)
{
    // The same sink observes the tile on all three physical networks.
    for (std::size_t n = 0; n < noc::kNumNocs; ++n)
        nets_[n]->setDeliverFn(tile, fn);
}

void
NodeChipset::injectFromTile(const noc::Packet &pkt)
{
    nets_[static_cast<std::size_t>(pkt.noc)]->inject(pkt);
}

void
NodeChipset::intoMesh(const noc::Packet &pkt)
{
    if (pkt.dstNode != node_) {
        // The memory controller sits in the chipset next to the bridge:
        // remote responses go straight out without re-crossing the mesh.
        panicIf(bridge_ == nullptr,
                "remote response on a node without a bridge");
        ++toBridge_;
        bridge_->sendPacket(pkt);
        return;
    }
    nets_[static_cast<std::size_t>(pkt.noc)]->injectFromOffChip(pkt);
}

void
NodeChipset::hubDeliver(const noc::Packet &pkt)
{
    if (pkt.dstNode != node_) {
        // Inter-node traffic: encapsulate and tunnel (section 3.1).
        panicIf(bridge_ == nullptr,
                "inter-node packet on a node without a bridge");
        ++toBridge_;
        bridge_->sendPacket(pkt);
        return;
    }
    switch (pkt.type) {
      case noc::MsgType::kMemRd:
      case noc::MsgType::kMemWr:
      case noc::MsgType::kNcLoad:
      case noc::MsgType::kNcStore:
        ++toMemory_;
        memctrl_.handlePacket(pkt);
        break;
      default:
        panic("hub received an unroutable packet type");
    }
}

void
NodeChipset::tick()
{
    for (auto &net : nets_)
        net->tick();
    ++clock_;
    eq_.runUntil(std::max(eq_.now(), clock_));
}

bool
NodeChipset::runUntilIdle(Cycles max_cycles)
{
    for (Cycles used = 0; used < max_cycles;) {
        // Event-horizon skip: with every mesh drained, each tick up to
        // the next device event only moves clocks — the memory
        // controller and bridge are event-driven, so no component can
        // change state sooner. Jump to one cycle short of the deadline
        // and let the normal tick below fire the events, clamped to the
        // budget so an undersized max_cycles still fails the same way.
        if (idleSkip_ && !eq_.empty()) {
            bool nets_idle = true;
            for (auto &net : nets_)
                nets_idle = nets_idle && net->idle();
            Cycles deadline = eq_.nextDeadline();
            if (nets_idle && deadline > clock_ + 1) {
                Cycles jump = std::min<Cycles>(deadline - 1 - clock_,
                                               max_cycles - used);
                clock_ += jump;
                for (auto &net : nets_)
                    net->advance(clock_);
                eq_.runUntil(std::max(eq_.now(), clock_));
                used += jump;
                if (used >= max_cycles)
                    return false;
            }
        }
        tick();
        ++used;
        bool idle = eq_.empty() && memctrl_.idle();
        for (auto &net : nets_)
            idle = idle && net->idle();
        if (bridge_)
            idle = idle && bridge_->sendIdle();
        if (idle)
            return true;
    }
    return false;
}

} // namespace smappic::platform
