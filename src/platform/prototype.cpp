#include "platform/prototype.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/trace_io.hpp"
#include "sim/log.hpp"

namespace smappic::platform
{

namespace
{

/** Adapts a byte-addressed AXI-Lite register file into an NcDevice. */
class LiteNcAdapter : public cache::NcDevice
{
  public:
    explicit LiteNcAdapter(axi::LiteTarget &target) : target_(target) {}

    std::uint64_t
    ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service) override
    {
        service = 8;
        std::uint32_t data = 0;
        target_.readReg(offset, data);
        return data;
    }

    void
    ncStore(Addr offset, std::uint32_t, std::uint64_t value, Cycles,
            Cycles &service) override
    {
        service = 8;
        target_.writeReg(axi::LiteWrite{offset,
                                        static_cast<std::uint32_t>(value),
                                        0xf});
    }

  private:
    axi::LiteTarget &target_;
};

/** Adapts the PLIC register file into an NcDevice. */
class PlicNcAdapter : public cache::NcDevice
{
  public:
    explicit PlicNcAdapter(riscv::PlicController &plic) : plic_(plic) {}

    std::uint64_t
    ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service) override
    {
        service = 8;
        return plic_.read(offset);
    }

    void
    ncStore(Addr offset, std::uint32_t, std::uint64_t value, Cycles,
            Cycles &service) override
    {
        service = 8;
        plic_.write(offset, static_cast<std::uint32_t>(value));
    }

  private:
    riscv::PlicController &plic_;
};

/** Adapts the CLINT register file into an NcDevice. */
class ClintNcAdapter : public cache::NcDevice
{
  public:
    explicit ClintNcAdapter(riscv::ClintController &clint) : clint_(clint)
    {
    }

    std::uint64_t
    ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service) override
    {
        service = 8;
        return clint_.read(offset);
    }

    void
    ncStore(Addr offset, std::uint32_t bytes, std::uint64_t value, Cycles,
            Cycles &service) override
    {
        service = 8;
        clint_.write(offset, value, bytes);
    }

  private:
    riscv::ClintController &clint_;
};

/**
 * Fabric window backing the host SD driver: inbound AXI writes become
 * stores into the SD region of memory (the inbound-AXI -> NoC -> memory
 * controller path, functionally).
 */
class SdWindowTarget : public axi::Target
{
  public:
    SdWindowTarget(mem::MainMemory &memory, Addr region_base)
        : memory_(memory), regionBase_(region_base)
    {
    }

    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        memory_.writeBytes(regionBase_ + req.addr - fabricBase_,
                           req.data.data(), req.data.size());
        return {axi::Resp::kOkay, req.id};
    }

    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        axi::ReadResp r;
        r.id = req.id;
        r.data.resize(req.bytes);
        memory_.readBytes(regionBase_ + req.addr - fabricBase_,
                          r.data.data(), req.bytes);
        return r;
    }

    void setFabricBase(Addr base) { fabricBase_ = base; }

  private:
    mem::MainMemory &memory_;
    Addr regionBase_;
    Addr fabricBase_ = 0;
};

} // namespace

// Fabric (PCIe) address map: bridges low, SD image windows high.
namespace
{
constexpr Addr kFabricBridgeBase = 0x0;
constexpr Addr kFabricBridgeStride = 0x100000;
constexpr Addr kFabricSdBase = 0x100000000ULL;
} // namespace

PrototypeConfig
PrototypeConfig::parse(const std::string &spec)
{
    PrototypeConfig cfg;
    std::uint32_t vals[3] = {0, 0, 0};
    std::size_t idx = 0;
    std::string cur;
    for (char c : spec + "x") {
        if (c == 'x' || c == 'X') {
            fatalIf(cur.empty() || idx >= 3,
                    "bad configuration spec '" + spec +
                        "' (want AxBxC, e.g. 4x1x12)");
            vals[idx++] = static_cast<std::uint32_t>(std::stoul(cur));
            cur.clear();
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            cur += c;
        } else {
            fatal("bad configuration spec '" + spec + "'");
        }
    }
    fatalIf(idx != 3, "bad configuration spec '" + spec + "'");
    cfg.fpgas = vals[0];
    cfg.nodesPerFpga = vals[1];
    cfg.tilesPerNode = vals[2];
    fatalIf(cfg.fpgas == 0 || cfg.nodesPerFpga == 0 ||
                cfg.tilesPerNode == 0,
            "configuration dimensions must be positive");
    fatalIf(cfg.fpgas > 4,
            "one F1 instance connects at most 4 FPGAs with low-latency "
            "PCIe links (paper section 4.8)");
    fatalIf(cfg.nodesPerFpga > 4,
            "F1 FPGAs expose 4 DRAM channels: at most 4 nodes per FPGA");
    return cfg;
}

std::string
PrototypeConfig::name() const
{
    return strfmt("%ux%ux%u", fpgas, nodesPerFpga, tilesPerNode);
}

class Prototype::CorePort : public riscv::MemPort
{
  public:
    CorePort(Prototype &proto, GlobalTileId gid) : proto_(proto), gid_(gid)
    {
    }

    std::uint64_t
    load(Addr addr, std::uint32_t bytes, Cycles now, Cycles &lat) override
    {
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kLoad,
                                    bytes, now);
        lat = r.latency;
        std::uint32_t n = std::min(bytes, 8u);
        std::uint64_t off = addr & (kCacheLineBytes - 1);
        if (r.staleData && off + n <= kCacheLineBytes) {
            // Test-mutation stale copy: serve the frozen line image the
            // tile would see had its invalidation really been lost.
            std::uint64_t v = 0;
            for (std::uint32_t i = 0; i < n; ++i)
                v |= static_cast<std::uint64_t>(r.staleData[off + i])
                     << (8 * i);
            return v;
        }
        return proto_.cs_->memory().load(addr, n);
    }

    void
    store(Addr addr, std::uint32_t bytes, std::uint64_t value, Cycles now,
          Cycles &lat) override
    {
        // Data goes into the functional store first so device windows
        // (whose handlers read it) observe the new value.
        proto_.cs_->memory().store(addr, std::min(bytes, 8u), value);
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kStore,
                                    bytes, now);
        lat = r.latency;
    }

    std::uint32_t
    fetch(Addr addr, Cycles now, Cycles &lat) override
    {
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kFetch,
                                    4, now);
        lat = r.latency;
        return static_cast<std::uint32_t>(
            proto_.cs_->memory().load(addr, 4));
    }

    std::uint64_t
    atomic(Addr addr, std::uint32_t bytes,
           const std::function<std::uint64_t(std::uint64_t)> &rmw,
           Cycles now, Cycles &lat) override
    {
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kAtomic,
                                    bytes, now);
        lat = r.latency;
        std::uint64_t old = proto_.cs_->memory().load(addr, bytes);
        proto_.cs_->memory().store(addr, bytes, rmw(old));
        return old;
    }

  private:
    Prototype &proto_;
    GlobalTileId gid_;
};

Prototype::Prototype(const PrototypeConfig &cfg) : cfg_(cfg)
{
    cache::Geometry geo;
    geo.nodes = cfg.totalNodes();
    geo.tilesPerNode = cfg.tilesPerNode;
    geo.dramBase = kDramBase;
    geo.memPerNode = cfg.memPerNode;
    geo.llcSliceBytes = cfg.llcSliceBytes;
    cs_ = std::make_unique<cache::CoherentSystem>(geo, cfg.timing,
                                                  cfg.homing, &stats_);

    if (cfg.check.enabled) {
        checker_ = std::make_unique<check::CoherenceChecker>(
            *cs_, cfg.check, &stats_);
        cs_->setObserver(checker_.get());
    }

    // Fault injector: only built when the plan actually injects, so a
    // fault-free prototype carries null hooks everywhere.
    if (!cfg.faultPlan.empty()) {
        faultInjector_ =
            std::make_unique<sim::FaultInjector>(cfg.faultPlan, &stats_);
    }

    fabric_ = std::make_unique<pcie::PcieFabric>(
        eq_, cfg.timing.pcieOneWay(), cfg.timing.pcieBytesPerCycle,
        &stats_);
    fabric_->setFaultInjector(faultInjector_.get());

    std::uint32_t nodes = cfg.totalNodes();
    auto fpga_of = [&](NodeId n) {
        return static_cast<FpgaId>(n / cfg.nodesPerFpga);
    };

    // CLINT + packetizer (cores receive interrupt packets).
    clint_ = std::make_unique<riscv::ClintController>(cfg.totalTiles());
    packetizer_ = std::make_unique<riscv::IrqPacketizer>(
        0,
        [this](const noc::Packet &pkt) {
            // Phased engine: a wire change raised inside a node phase for
            // a core on *another* node travels through the mailbox and
            // lands at the next quantum boundary (conservatively within
            // the PCIe lookahead). Same-node and serial-context changes
            // apply immediately, as in the sequential engine.
            NodeId acting = sim::currentNode();
            if (acting != sim::kNoNode && pkt.dstNode != acting) {
                stats_.counter("platform.irqDeferred").increment();
                router_.post([this, pkt] { deliverIrqPacket(pkt); });
                return;
            }
            deliverIrqPacket(pkt);
        },
        [this](std::uint32_t hart) {
            return std::make_pair<NodeId, TileId>(
                hart / cfg_.tilesPerNode, hart % cfg_.tilesPerNode);
        });
    clint_->setWireFn([this](std::uint32_t h, std::uint32_t irq, bool l) {
        packetizer_->onWireChange(h, irq, l);
    });
    auto clint_adapter = std::make_unique<ClintNcAdapter>(*clint_);
    cs_->addDevice(kClintBase, kClintSize, 0, clint_adapter.get());
    ncAdapters_.push_back(std::move(clint_adapter));

    // PLIC: one external source per node's console UART; its hart lines
    // ride the interrupt packetizer as machine-external interrupts.
    plic_ = std::make_unique<riscv::PlicController>(nodes,
                                                    cfg.totalTiles());
    plic_->setWireFn([this](std::uint32_t hart, bool level) {
        packetizer_->onWireChange(hart, riscv::kIrqMei, level);
    });
    auto plic_adapter = std::make_unique<PlicNcAdapter>(*plic_);
    cs_->addDevice(kPlicBase, kPlicSize, 0, plic_adapter.get());
    ncAdapters_.push_back(std::move(plic_adapter));
    for (NodeId n = 0; n < nodes; ++n) {
        // Firmware defaults: source n+1 (node n console) at priority 1,
        // routed to the node's tile-0 hart with threshold 0.
        plic_->write(riscv::kPlicPriorityBase + 4 * (n + 1), 1);
        std::uint32_t hart = n * cfg.tilesPerNode;
        plic_->write(riscv::kPlicEnableBase +
                         hart * riscv::kPlicEnableStride,
                     1u << (n + 1));
    }

    // Per-node substrate.
    serials_.resize(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        // Inter-node bridge (when the coherent interconnect is enabled).
        if (cfg.interNodeInterconnect && nodes > 1) {
            bridge::BridgeConfig bcfg;
            bcfg.reliability = cfg.reliability;
            auto b = std::make_unique<bridge::InterNodeBridge>(
                n, fpga_of(n),
                kFabricBridgeBase + n * kFabricBridgeStride, eq_,
                *fabric_, bcfg, &stats_);
            b->setFaultInjector(faultInjector_.get());
            b->setDeliverFn([this](const noc::Packet &pkt) {
                if (pkt.type == noc::MsgType::kInterrupt) {
                    GlobalTileId gid =
                        pkt.dstNode * cfg_.tilesPerNode + pkt.dstTile;
                    if (gid < cores_.size() && cores_[gid])
                        riscv::IrqDepacketizer::apply(pkt, *cores_[gid]);
                }
                stats_.counter("platform.bridgePacketsIn").increment();
            });
            bridges_.push_back(std::move(b));
        }

        // DRAM channel + NoC-AXI4 memory controller.
        Addr dram_base = kDramBase + static_cast<Addr>(n) * cfg.memPerNode;
        mem::DramTiming dt;
        dt.latency = cfg.timing.dramLatency;
        dt.bytesPerCycle = cfg.timing.dramBytesPerCycle;
        drams_.push_back(std::make_unique<mem::AxiDram>(
            eq_, cs_->memory(), dram_base, cfg.memPerNode, dt));
        drams_.back()->setFaultInjector(faultInjector_.get());
        auto ctrl = std::make_unique<mem::NocAxiMemController>(
            n, eq_, *drams_.back(), mem::MemCtrlConfig{}, &stats_);
        ctrl->setFaultInjector(faultInjector_.get());
        ctrl->setSendFn([this](const noc::Packet &) {
            stats_.counter("platform.memctrlResponses").increment();
        });
        memctrls_.push_back(std::move(ctrl));

        // Two UARTs per node: console (115200) and data (~1 Mbit/s).
        for (int u = 0; u < 2; ++u) {
            auto uart = std::make_unique<io::Uart16550>(
                u == 0 ? 115200 : 1'000'000);
            if (u == 0) {
                serials_[n].attach(*uart);
                // Console RX interrupts are PLIC source n+1; the PLIC
                // raises the owning hart's machine-external line through
                // the packetizer.
                std::uint32_t src = n + 1;
                uart->setIrqFn([this, src](bool level) {
                    plic_->setSourceLevel(src, level);
                });
            }
            auto adapter = std::make_unique<LiteNcAdapter>(*uart);
            cs_->addDevice(kUartBase + n * kUartNodeStride +
                               u * kUartStride,
                           kUartStride, n * cfg.tilesPerNode,
                           adapter.get());
            ncAdapters_.push_back(std::move(adapter));
            uarts_.push_back(std::move(uart));
        }

        // Virtual SD card: top half of the node's DRAM.
        Addr sd_region = dram_base + cfg.memPerNode / 2;
        sdCards_.push_back(std::make_unique<io::VirtualSdCard>(
            cs_->memory(), sd_region, cfg.memPerNode / 2));
        cs_->addDevice(kSdMmioBase + n * kSdMmioStride, kSdMmioStride,
                       n * cfg.tilesPerNode, sdCards_.back().get());
        // Host-side init path: a fabric window over the SD region.
        auto sd_target =
            std::make_unique<SdWindowTarget>(cs_->memory(), sd_region);
        Addr fabric_base = kFabricSdBase +
                           static_cast<Addr>(n) * (cfg.memPerNode / 2);
        sd_target->setFabricBase(fabric_base);
        fabric_->addWindow(fabric_base, cfg.memPerNode / 2,
                           sd_target.get(), fpga_of(n),
                           strfmt("sd.node%u", n));
        fabricAdapters_.push_back(std::move(sd_target));
    }

    // Bridge peering (full mesh).
    for (auto &b : bridges_) {
        for (auto &peer : bridges_) {
            if (b->node() != peer->node())
                b->addPeer(peer->node(), peer->windowBase());
        }
    }

    // Cores.
    std::uint32_t total = cfg.totalTiles();
    for (GlobalTileId g = 0; g < total; ++g) {
        ports_.push_back(std::make_unique<CorePort>(*this, g));
        riscv::CoreConfig ccfg = riscv::corePreset(cfg.coreModel);
        ccfg.hartId = g;
        ccfg.resetPc = kDramBase;
        auto core = std::make_unique<riscv::RvCore>(ccfg, *ports_.back(),
                                                    &stats_);
        core->setEcallHandler([this, g](riscv::RvCore &c) {
            std::uint64_t num = c.reg(17); // a7
            if (num == 93) {               // exit
                c.requestExit(static_cast<std::int64_t>(c.reg(10)));
                return true;
            }
            if (num == 64) { // write(fd, buf, len)
                // Console UART + PLIC are shared devices; under the
                // phased engine this joins the device critical section.
                auto guard = cs_->parallelGuard();
                NodeId n = g / cfg_.tilesPerNode;
                Addr buf = c.reg(11);
                std::uint64_t len = c.reg(12);
                for (std::uint64_t i = 0; i < len; ++i) {
                    auto byte = static_cast<std::uint8_t>(
                        cs_->memory().load(buf + i, 1));
                    consoleUart(n).writeReg(
                        axi::LiteWrite{io::kUartRbrThr, byte, 0x1});
                }
                c.setReg(10, len);
                return true;
            }
            if (num == 63) { // read(fd, buf, len) from the console UART
                auto guard = cs_->parallelGuard();
                NodeId n = g / cfg_.tilesPerNode;
                Addr buf = c.reg(11);
                std::uint64_t len = c.reg(12);
                std::uint64_t got = 0;
                while (got < len && !consoleUart(n).rxEmpty()) {
                    std::uint32_t data = 0;
                    consoleUart(n).readReg(io::kUartRbrThr, data);
                    cs_->memory().store(buf + got, 1, data & 0xff);
                    ++got;
                }
                c.setReg(10, got);
                return true;
            }
            return false;
        });
        cores_.push_back(std::move(core));
    }

    // Observability: configure the tracer and hand each traced component
    // its cached per-component handle (null when tracing is disabled or
    // the component is masked out, so every trace point costs exactly one
    // branch on a cached pointer).
    tracer_.configure(cfg_.trace, nodes);
    cs_->setTracer(&tracer_);
    fabric_->setTracer(&tracer_);
    for (auto &b : bridges_)
        b->setTracer(&tracer_);
    for (GlobalTileId g = 0; g < cores_.size(); ++g)
        cores_[g]->setTracer(&tracer_, g / cfg_.tilesPerNode,
                             cfg_.trace.coreStallCycles);

    // Phased-engine wiring: shared components learn they may be entered
    // from concurrent node phases, and mid-phase cross-node interactions
    // are rerouted through the mailbox. All of it is inert (and costs
    // one branch per hook) under the default sequential config.
    if (cfg_.parallel.active()) {
        router_.configure(nodes);
        cs_->setParallel(true);
        cs_->memory().setConcurrent(true);
        fabric_->setRouter(&router_);
        for (auto &b : bridges_)
            b->setRouter(&router_);
    }
}

Prototype::~Prototype() = default;

void
Prototype::writeTrace(const std::string &path) const
{
    fatalIf(!tracer_.enabled(), "writeTrace: tracing is disabled");
    const std::string &target = path.empty() ? cfg_.trace.path : path;
    fatalIf(target.empty(), "writeTrace: no output path configured");
    std::ofstream os(target, std::ios::binary);
    fatalIf(!os, "writeTrace: cannot open '" + target + "'");
    obs::writeBinary(tracer_, os);
    fatalIf(!os.good(), "writeTrace: write to '" + target + "' failed");
}

void
Prototype::deliverIrqPacket(const noc::Packet &pkt)
{
    GlobalTileId gid = pkt.dstNode * cfg_.tilesPerNode + pkt.dstTile;
    if (gid < cores_.size() && cores_[gid])
        riscv::IrqDepacketizer::apply(pkt, *cores_[gid]);
    stats_.counter("platform.irqPackets").increment();
}

accel::GngAccelerator &
Prototype::addGng(GlobalTileId tile)
{
    auto gng = std::make_unique<accel::GngAccelerator>(
        static_cast<std::uint32_t>(cfg_.seed + tile));
    Addr base = kAccelBase + accelWindows_.size() * kAccelStride;
    cs_->addDevice(base, kAccelStride, tile, gng.get());
    accelWindows_.emplace_back(tile, base);
    gngs_.push_back(std::move(gng));
    return *gngs_.back();
}

accel::MapleEngine &
Prototype::addMaple(GlobalTileId tile)
{
    auto eng = std::make_unique<accel::MapleEngine>(*cs_, tile);
    Addr base = kAccelBase + accelWindows_.size() * kAccelStride;
    cs_->addDevice(base, kAccelStride, tile, eng.get());
    accelWindows_.emplace_back(tile, base);
    maples_.push_back(std::move(eng));
    return *maples_.back();
}

Addr
Prototype::accelWindow(GlobalTileId tile) const
{
    for (const auto &[t, base] : accelWindows_) {
        if (t == tile)
            return base;
    }
    fatal("no accelerator registered at that tile");
}

void
Prototype::loadProgram(const riscv::Program &prog)
{
    for (const auto &seg : prog.segments)
        cs_->memory().writeBytes(seg.base, seg.bytes.data(),
                                 seg.bytes.size());
}

riscv::Program
Prototype::loadSource(const std::string &source)
{
    riscv::Assembler as(kDramBase, kDramBase + 0x400000);
    riscv::Program prog = as.assemble(source);
    loadProgram(prog);
    for (auto &core : cores_)
        core->setPc(prog.entry);
    return prog;
}

riscv::Program
Prototype::loadSourceReplicated(const std::string &source)
{
    riscv::Assembler as(kDramBase, kDramBase + 0x400000);
    riscv::Program prog = as.assemble(source);
    for (NodeId n = 0; n < cfg_.totalNodes(); ++n) {
        Addr off = static_cast<Addr>(n) * cfg_.memPerNode;
        for (const auto &seg : prog.segments)
            cs_->memory().writeBytes(seg.base + off, seg.bytes.data(),
                                     seg.bytes.size());
    }
    for (GlobalTileId g = 0; g < cores_.size(); ++g) {
        NodeId n = g / cfg_.tilesPerNode;
        cores_[g]->setPc(prog.entry +
                         static_cast<Addr>(n) * cfg_.memPerNode);
    }
    return prog;
}

riscv::HaltReason
Prototype::runCore(GlobalTileId gid, std::uint64_t max_instructions)
{
    auto &c = core(gid);
    std::uint64_t executed = 0;
    while (executed < max_instructions) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(1000, max_instructions - executed);
        riscv::HaltReason r = c.run(chunk);
        executed += chunk;
        clint_->setTime(c.cycles());
        eq_.runUntil(c.cycles());
        if (r == riscv::HaltReason::kExited ||
            r == riscv::HaltReason::kEbreak)
            return r;
        if (r == riscv::HaltReason::kWfi) {
            // Let device time advance until an interrupt shows up.
            bool woke = false;
            for (int spin = 0; spin < 10000 && !woke; ++spin) {
                clint_->setTime(clint_->mtime() + 100);
                eq_.runUntil(eq_.now() + 100);
                woke = c.interruptPending();
            }
            if (!woke)
                return riscv::HaltReason::kWfi;
        }
    }
    return riscv::HaltReason::kInstrBudget;
}

void
Prototype::runCores(const std::vector<GlobalTileId> &gids,
                    std::uint64_t max_instructions_each)
{
    if (cfg_.parallel.active()) {
        runCoresPhased(gids, max_instructions_each);
        return;
    }
    struct State
    {
        GlobalTileId gid;
        std::uint64_t executed = 0;
        bool done = false;
    };
    std::vector<State> states;
    states.reserve(gids.size());
    for (GlobalTileId g : gids)
        states.push_back(State{g, 0, false});

    bool progress = true;
    while (progress) {
        progress = false;
        // Pick the live core with the smallest local clock.
        State *next = nullptr;
        for (auto &s : states) {
            if (s.done)
                continue;
            if (!next ||
                core(s.gid).cycles() < core(next->gid).cycles())
                next = &s;
        }
        if (!next)
            break;
        auto &c = core(next->gid);
        std::uint64_t chunk = std::min<std::uint64_t>(
            100, max_instructions_each - next->executed);
        if (chunk == 0) {
            next->done = true;
            continue;
        }
        riscv::HaltReason r = c.run(chunk);
        next->executed += chunk;
        progress = true;
        Cycles maxc = 0;
        for (auto &s : states)
            maxc = std::max(maxc, core(s.gid).cycles());
        clint_->setTime(maxc);
        eq_.runUntil(maxc);
        if (r == riscv::HaltReason::kExited ||
            r == riscv::HaltReason::kEbreak)
            next->done = true;
        if (r == riscv::HaltReason::kWfi) {
            // Another core may wake it; if every live core is in wfi,
            // advance device time.
            bool all_wfi = true;
            for (auto &s : states) {
                if (!s.done && !(core(s.gid).instret() > 0 &&
                                 s.gid == next->gid))
                    all_wfi = false;
            }
            if (all_wfi) {
                clint_->setTime(clint_->mtime() + 1000);
                eq_.runUntil(eq_.now() + 1000);
                if (!c.interruptPending())
                    next->done = true;
            }
        }
    }
}

void
Prototype::runCoresPhased(const std::vector<GlobalTileId> &gids,
                          std::uint64_t max_instructions_each)
{
    struct CoreState
    {
        GlobalTileId gid;
        std::uint64_t executed = 0;
        bool done = false;
        bool parked = false; ///< In wfi, waiting for an interrupt.
    };
    struct NodeState
    {
        std::vector<CoreState> cores;
        /** Written by the owning worker, read at the barrier (the epoch
         *  barrier orders the accesses). */
        bool progressed = false;
    };

    std::uint32_t nodes = cfg_.totalNodes();
    std::vector<NodeState> ns(nodes);
    for (GlobalTileId g : gids)
        ns.at(g / cfg_.tilesPerNode).cores.push_back(CoreState{g});

    // Quantum: the PCIe one-way latency is the lookahead — nothing one
    // node does can reach another sooner — so it is both the default and
    // the largest quantum that stays conservative.
    Cycles quantum = cfg_.parallel.quantum ? cfg_.parallel.quantum
                                           : cfg_.timing.pcieOneWay();
    Cycles boundary = eq_.now();
    for (GlobalTileId g : gids)
        boundary = std::max(boundary, core(g).cycles());
    boundary += quantum;

    // Per-node stat shards: all stats produced inside a node phase land
    // in the node's shard and merge back in node order after the run.
    std::vector<sim::StatRegistry> shards(nodes);

    auto node_phase = [&](std::uint32_t n) {
        sim::ActingNodeScope acting(n);
        sim::StatRegistry::Redirect redirect(&stats_, &shards[n]);
        NodeState &node = ns[n];
        while (true) {
            // Smallest-local-clock-first over this node's live cores —
            // the sequential engine's policy restricted to one node.
            CoreState *next = nullptr;
            for (auto &s : node.cores) {
                if (s.done || s.parked)
                    continue;
                if (core(s.gid).cycles() >= boundary)
                    continue;
                if (!next ||
                    core(s.gid).cycles() < core(next->gid).cycles())
                    next = &s;
            }
            if (!next)
                return;
            auto &c = core(next->gid);
            std::uint64_t chunk = std::min<std::uint64_t>(
                100, max_instructions_each - next->executed);
            if (chunk == 0) {
                next->done = true;
                continue;
            }
            riscv::HaltReason r = c.run(chunk);
            next->executed += chunk;
            node.progressed = true;
            if (r == riscv::HaltReason::kExited ||
                r == riscv::HaltReason::kEbreak) {
                next->done = true;
            } else if (r == riscv::HaltReason::kWfi) {
                if (!c.interruptPending())
                    next->parked = true; // Barriers re-arm on wake.
            }
        }
    };

    // An epoch with no instructions, no mailbox traffic and no device
    // events cannot create progress later except through timer interrupts
    // raised by the advancing mtime; bound how long we wait for one.
    std::uint64_t idle_epochs = 0;
    const std::uint64_t idle_limit =
        std::max<std::uint64_t>(1, 1'000'000 / quantum);

    auto barrier = [&](std::uint64_t) -> bool {
        // Serial context: replay deferred cross-node interactions in
        // deterministic mailbox order, then advance shared device time
        // to the boundary.
        std::uint64_t delivered = router_.drain();
        clint_->setTime(boundary);
        std::uint64_t events = eq_.runUntil(boundary);

        bool any_live = false;
        bool progress = delivered > 0 || events > 0;
        for (auto &node : ns) {
            if (node.progressed)
                progress = true;
            node.progressed = false;
            for (auto &s : node.cores) {
                if (s.done)
                    continue;
                if (s.parked && core(s.gid).interruptPending()) {
                    s.parked = false;
                    progress = true;
                }
                any_live = true;
            }
        }
        if (!any_live)
            return false;
        if (progress) {
            idle_epochs = 0;
        } else if (++idle_epochs >= idle_limit) {
            return false; // Every live core is parked with no wake source.
        }
        boundary += quantum;
        return true;
    };

    std::uint32_t workers =
        std::min(std::max<std::uint32_t>(1, cfg_.parallel.threads), nodes);
    sim::ParallelExecutor exec(workers);
    exec.run(nodes, node_phase, barrier);

    for (std::uint32_t n = 0; n < nodes; ++n)
        stats_.mergeFrom(shards[n]);
}

std::unique_ptr<os::GuestSystem>
Prototype::makeGuest(os::NumaMode mode, std::uint64_t seed)
{
    auto guest = std::make_unique<os::GuestSystem>(*cs_, mode, seed);
    // MMIO is identity-mapped (not paged).
    guest->mapDeviceIdentity(kClintBase, kClintSize);
    guest->mapDeviceIdentity(kSdMmioBase,
                             kSdMmioStride * cfg_.totalNodes());
    guest->mapDeviceIdentity(kUartBase,
                             kUartNodeStride * cfg_.totalNodes());
    guest->mapDeviceIdentity(kAccelBase, kAccelStride * 64);
    return guest;
}

Addr
Prototype::addressHomedAt(GlobalTileId to) const
{
    NodeId node = to / cfg_.tilesPerNode;
    TileId tile = to % cfg_.tilesPerNode;
    Addr base = kDramBase + static_cast<Addr>(node) * cfg_.memPerNode +
                cfg_.memPerNode / 4;
    for (std::uint64_t k = 0; k < 100000; ++k) {
        Addr line = base + k * kCacheLineBytes;
        auto [hn, ht] = cs_->homeOf(line);
        if (hn == node && ht == tile)
            return line;
    }
    panic("no address homed at the requested tile found");
}

Cycles
Prototype::measureRoundTrip(GlobalTileId from, GlobalTileId to)
{
    Addr addr = addressHomedAt(to);
    probeClock_ += 1'000'000;
    // Warm the home LLC slice with an access from the home tile itself,
    // then drop every private copy so the probe is a clean two-hop
    // requester -> home -> requester transaction.
    cs_->access(to, addr, cache::AccessType::kLoad, 8, probeClock_);
    cs_->flushPrivate(to);
    cs_->flushPrivate(from);
    probeClock_ += 1'000'000;
    auto r = cs_->access(from, addr, cache::AccessType::kLoad, 8,
                         probeClock_);
    cs_->flushPrivate(from);
    return r.latency;
}

} // namespace smappic::platform
