#include "platform/prototype.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/trace_io.hpp"
#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::platform
{

namespace
{

/** Adapts a byte-addressed AXI-Lite register file into an NcDevice. */
class LiteNcAdapter : public cache::NcDevice
{
  public:
    explicit LiteNcAdapter(axi::LiteTarget &target) : target_(target) {}

    std::uint64_t
    ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service) override
    {
        service = 8;
        std::uint32_t data = 0;
        target_.readReg(offset, data);
        return data;
    }

    void
    ncStore(Addr offset, std::uint32_t, std::uint64_t value, Cycles,
            Cycles &service) override
    {
        service = 8;
        target_.writeReg(axi::LiteWrite{offset,
                                        static_cast<std::uint32_t>(value),
                                        0xf});
    }

  private:
    axi::LiteTarget &target_;
};

/** Adapts the PLIC register file into an NcDevice. */
class PlicNcAdapter : public cache::NcDevice
{
  public:
    explicit PlicNcAdapter(riscv::PlicController &plic) : plic_(plic) {}

    std::uint64_t
    ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service) override
    {
        service = 8;
        return plic_.read(offset);
    }

    void
    ncStore(Addr offset, std::uint32_t, std::uint64_t value, Cycles,
            Cycles &service) override
    {
        service = 8;
        plic_.write(offset, static_cast<std::uint32_t>(value));
    }

  private:
    riscv::PlicController &plic_;
};

/** Adapts the CLINT register file into an NcDevice. */
class ClintNcAdapter : public cache::NcDevice
{
  public:
    explicit ClintNcAdapter(riscv::ClintController &clint) : clint_(clint)
    {
    }

    std::uint64_t
    ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service) override
    {
        service = 8;
        return clint_.read(offset);
    }

    void
    ncStore(Addr offset, std::uint32_t bytes, std::uint64_t value, Cycles,
            Cycles &service) override
    {
        service = 8;
        clint_.write(offset, value, bytes);
    }

  private:
    riscv::ClintController &clint_;
};

/**
 * Fabric window backing the host SD driver: inbound AXI writes become
 * stores into the SD region of memory (the inbound-AXI -> NoC -> memory
 * controller path, functionally).
 */
class SdWindowTarget : public axi::Target
{
  public:
    SdWindowTarget(mem::MainMemory &memory, Addr region_base)
        : memory_(memory), regionBase_(region_base)
    {
    }

    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        memory_.writeBytes(regionBase_ + req.addr - fabricBase_,
                           req.data.data(), req.data.size());
        return {axi::Resp::kOkay, req.id};
    }

    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        axi::ReadResp r;
        r.id = req.id;
        r.data.resize(req.bytes);
        memory_.readBytes(regionBase_ + req.addr - fabricBase_,
                          r.data.data(), req.bytes);
        return r;
    }

    void setFabricBase(Addr base) { fabricBase_ = base; }

  private:
    mem::MainMemory &memory_;
    Addr regionBase_;
    Addr fabricBase_ = 0;
};

} // namespace

// Fabric (PCIe) address map: bridges low, SD image windows high.
namespace
{
constexpr Addr kFabricBridgeBase = 0x0;
constexpr Addr kFabricBridgeStride = 0x100000;
constexpr Addr kFabricSdBase = 0x100000000ULL;
} // namespace

PrototypeConfig
PrototypeConfig::parse(const std::string &spec)
{
    PrototypeConfig cfg;
    std::uint32_t vals[3] = {0, 0, 0};
    std::size_t idx = 0;
    std::string cur;
    for (char c : spec + "x") {
        if (c == 'x' || c == 'X') {
            fatalIf(cur.empty() || idx >= 3,
                    "bad configuration spec '" + spec +
                        "' (want AxBxC, e.g. 4x1x12)");
            vals[idx++] = static_cast<std::uint32_t>(std::stoul(cur));
            cur.clear();
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            cur += c;
        } else {
            fatal("bad configuration spec '" + spec + "'");
        }
    }
    fatalIf(idx != 3, "bad configuration spec '" + spec + "'");
    cfg.fpgas = vals[0];
    cfg.nodesPerFpga = vals[1];
    cfg.tilesPerNode = vals[2];
    fatalIf(cfg.fpgas == 0 || cfg.nodesPerFpga == 0 ||
                cfg.tilesPerNode == 0,
            "configuration dimensions must be positive");
    fatalIf(cfg.fpgas > 4,
            "one F1 instance connects at most 4 FPGAs with low-latency "
            "PCIe links (paper section 4.8)");
    fatalIf(cfg.nodesPerFpga > 4,
            "F1 FPGAs expose 4 DRAM channels: at most 4 nodes per FPGA");
    return cfg;
}

std::string
PrototypeConfig::name() const
{
    return strfmt("%ux%ux%u", fpgas, nodesPerFpga, tilesPerNode);
}

class Prototype::CorePort : public riscv::MemPort
{
  public:
    CorePort(Prototype &proto, GlobalTileId gid) : proto_(proto), gid_(gid)
    {
    }

    std::uint64_t
    load(Addr addr, std::uint32_t bytes, Cycles now, Cycles &lat) override
    {
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kLoad,
                                    bytes, now);
        lat = r.latency;
        std::uint32_t n = std::min(bytes, 8u);
        std::uint64_t off = addr & (kCacheLineBytes - 1);
        if (r.staleData && off + n <= kCacheLineBytes) {
            // Test-mutation stale copy: serve the frozen line image the
            // tile would see had its invalidation really been lost.
            std::uint64_t v = 0;
            for (std::uint32_t i = 0; i < n; ++i)
                v |= static_cast<std::uint64_t>(r.staleData[off + i])
                     << (8 * i);
            return v;
        }
        return proto_.cs_->memory().load(addr, n);
    }

    void
    store(Addr addr, std::uint32_t bytes, std::uint64_t value, Cycles now,
          Cycles &lat) override
    {
        // Data goes into the functional store first so device windows
        // (whose handlers read it) observe the new value.
        proto_.cs_->memory().store(addr, std::min(bytes, 8u), value);
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kStore,
                                    bytes, now);
        lat = r.latency;
    }

    std::uint32_t
    fetch(Addr addr, Cycles now, Cycles &lat) override
    {
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kFetch,
                                    4, now);
        lat = r.latency;
        return static_cast<std::uint32_t>(
            proto_.cs_->memory().load(addr, 4));
    }

    bool
    fetchFastHit(Addr addr, Cycles now, Cycles &lat) override
    {
        (void)now;
        return proto_.cs_->fetchFastHit(gid_, addr, lat);
    }

    riscv::CodeRef
    codeRef(Addr addr) override
    {
        const auto &stamp = proto_.cs_->memory().pageWriteStamp(addr);
        return riscv::CodeRef{&stamp,
                              stamp.load(std::memory_order_acquire)};
    }

    bool
    loadFastHit(Addr addr, std::uint32_t bytes, Cycles now, Cycles &lat,
                std::uint64_t &value) override
    {
        (void)now;
        // An L1D hit can carry no stale-copy plumbing (loadFastHit
        // bails on any armed mutation), so data always comes from the
        // functional store, as on the slow path's non-stale branch.
        if (!proto_.cs_->loadFastHit(gid_, addr, lat))
            return false;
        value = proto_.cs_->memory().load(addr, std::min(bytes, 8u));
        return true;
    }

    bool
    storeFastHit(Addr addr, std::uint32_t bytes, std::uint64_t value,
                 Cycles now, Cycles &lat) override
    {
        (void)now;
        // Probe the timing hierarchy before touching memory: a false
        // return must leave every byte as it was. A BPC-M hit is never
        // a device window, so the slow path's store-memory-first
        // ordering (device handlers read the functional store) has no
        // observable counterpart here.
        if (!proto_.cs_->storeFastHit(gid_, addr, lat))
            return false;
        proto_.cs_->memory().store(addr, std::min(bytes, 8u), value);
        return true;
    }

    std::uint64_t
    atomic(Addr addr, std::uint32_t bytes,
           const std::function<std::uint64_t(std::uint64_t)> &rmw,
           Cycles now, Cycles &lat) override
    {
        auto r = proto_.cs_->access(gid_, addr, cache::AccessType::kAtomic,
                                    bytes, now);
        lat = r.latency;
        std::uint64_t old = proto_.cs_->memory().load(addr, bytes);
        proto_.cs_->memory().store(addr, bytes, rmw(old));
        return old;
    }

  private:
    Prototype &proto_;
    GlobalTileId gid_;
};

Prototype::Prototype(const PrototypeConfig &cfg) : cfg_(cfg)
{
    cache::Geometry geo;
    geo.nodes = cfg.totalNodes();
    geo.tilesPerNode = cfg.tilesPerNode;
    geo.dramBase = kDramBase;
    geo.memPerNode = cfg.memPerNode;
    geo.llcSliceBytes = cfg.llcSliceBytes;
    cs_ = std::make_unique<cache::CoherentSystem>(geo, cfg.timing,
                                                  cfg.homing, &stats_);

    if (cfg.check.enabled) {
        checker_ = std::make_unique<check::CoherenceChecker>(
            *cs_, cfg.check, &stats_);
        cs_->setObserver(checker_.get());
    }

    // Fault injector: only built when the plan actually injects, so a
    // fault-free prototype carries null hooks everywhere.
    if (!cfg.faultPlan.empty()) {
        faultInjector_ =
            std::make_unique<sim::FaultInjector>(cfg.faultPlan, &stats_);
    }

    fabric_ = std::make_unique<pcie::PcieFabric>(
        eq_, cfg.timing.pcieOneWay(), cfg.timing.pcieBytesPerCycle,
        &stats_);
    fabric_->setFaultInjector(faultInjector_.get());

    std::uint32_t nodes = cfg.totalNodes();
    auto fpga_of = [&](NodeId n) {
        return static_cast<FpgaId>(n / cfg.nodesPerFpga);
    };

    // CLINT + packetizer (cores receive interrupt packets).
    clint_ = std::make_unique<riscv::ClintController>(cfg.totalTiles());
    packetizer_ = std::make_unique<riscv::IrqPacketizer>(
        0,
        [this](const noc::Packet &pkt) {
            // Phased engine: a wire change raised inside a node phase for
            // a core on *another* node travels through the mailbox and
            // lands at the next quantum boundary (conservatively within
            // the PCIe lookahead). Same-node and serial-context changes
            // apply immediately, as in the sequential engine.
            NodeId acting = sim::currentNode();
            if (acting != sim::kNoNode && pkt.dstNode != acting) {
                stats_.counter("platform.irqDeferred").increment();
                router_.post([this, pkt] { deliverIrqPacket(pkt); });
                return;
            }
            deliverIrqPacket(pkt);
        },
        [this](std::uint32_t hart) {
            return std::make_pair<NodeId, TileId>(
                hart / cfg_.tilesPerNode, hart % cfg_.tilesPerNode);
        });
    clint_->setWireFn([this](std::uint32_t h, std::uint32_t irq, bool l) {
        packetizer_->onWireChange(h, irq, l);
    });
    auto clint_adapter = std::make_unique<ClintNcAdapter>(*clint_);
    cs_->addDevice(kClintBase, kClintSize, 0, clint_adapter.get());
    ncAdapters_.push_back(std::move(clint_adapter));

    // PLIC: one external source per node's console UART; its hart lines
    // ride the interrupt packetizer as machine-external interrupts.
    plic_ = std::make_unique<riscv::PlicController>(nodes,
                                                    cfg.totalTiles());
    plic_->setWireFn([this](std::uint32_t hart, bool level) {
        packetizer_->onWireChange(hart, riscv::kIrqMei, level);
    });
    auto plic_adapter = std::make_unique<PlicNcAdapter>(*plic_);
    cs_->addDevice(kPlicBase, kPlicSize, 0, plic_adapter.get());
    ncAdapters_.push_back(std::move(plic_adapter));
    for (NodeId n = 0; n < nodes; ++n) {
        // Firmware defaults: source n+1 (node n console) at priority 1,
        // routed to the node's tile-0 hart with threshold 0.
        plic_->write(riscv::kPlicPriorityBase + 4 * (n + 1), 1);
        std::uint32_t hart = n * cfg.tilesPerNode;
        plic_->write(riscv::kPlicEnableBase +
                         hart * riscv::kPlicEnableStride,
                     1u << (n + 1));
    }

    // Per-node substrate.
    serials_.resize(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        // Inter-node bridge (when the coherent interconnect is enabled).
        if (cfg.interNodeInterconnect && nodes > 1) {
            bridge::BridgeConfig bcfg;
            bcfg.reliability = cfg.reliability;
            auto b = std::make_unique<bridge::InterNodeBridge>(
                n, fpga_of(n),
                kFabricBridgeBase + n * kFabricBridgeStride, eq_,
                *fabric_, bcfg, &stats_);
            b->setFaultInjector(faultInjector_.get());
            b->setDeliverFn([this](const noc::Packet &pkt) {
                if (pkt.type == noc::MsgType::kInterrupt) {
                    GlobalTileId gid =
                        pkt.dstNode * cfg_.tilesPerNode + pkt.dstTile;
                    if (gid < cores_.size() && cores_[gid])
                        riscv::IrqDepacketizer::apply(pkt, *cores_[gid]);
                }
                stats_.counter("platform.bridgePacketsIn").increment();
            });
            bridges_.push_back(std::move(b));
        }

        // DRAM channel + NoC-AXI4 memory controller.
        Addr dram_base = kDramBase + static_cast<Addr>(n) * cfg.memPerNode;
        mem::DramTiming dt;
        dt.latency = cfg.timing.dramLatency;
        dt.bytesPerCycle = cfg.timing.dramBytesPerCycle;
        drams_.push_back(std::make_unique<mem::AxiDram>(
            eq_, cs_->memory(), dram_base, cfg.memPerNode, dt));
        drams_.back()->setFaultInjector(faultInjector_.get());
        auto ctrl = std::make_unique<mem::NocAxiMemController>(
            n, eq_, *drams_.back(), mem::MemCtrlConfig{}, &stats_);
        ctrl->setFaultInjector(faultInjector_.get());
        ctrl->setSendFn([this](const noc::Packet &) {
            stats_.counter("platform.memctrlResponses").increment();
        });
        memctrls_.push_back(std::move(ctrl));

        // Two UARTs per node: console (115200) and data (~1 Mbit/s).
        for (int u = 0; u < 2; ++u) {
            auto uart = std::make_unique<io::Uart16550>(
                u == 0 ? 115200 : 1'000'000);
            if (u == 0) {
                serials_[n].attach(*uart);
                // Console RX interrupts are PLIC source n+1; the PLIC
                // raises the owning hart's machine-external line through
                // the packetizer.
                std::uint32_t src = n + 1;
                uart->setIrqFn([this, src](bool level) {
                    plic_->setSourceLevel(src, level);
                });
            }
            auto adapter = std::make_unique<LiteNcAdapter>(*uart);
            cs_->addDevice(kUartBase + n * kUartNodeStride +
                               u * kUartStride,
                           kUartStride, n * cfg.tilesPerNode,
                           adapter.get());
            ncAdapters_.push_back(std::move(adapter));
            uarts_.push_back(std::move(uart));
        }

        // Virtual SD card: top half of the node's DRAM.
        Addr sd_region = dram_base + cfg.memPerNode / 2;
        sdCards_.push_back(std::make_unique<io::VirtualSdCard>(
            cs_->memory(), sd_region, cfg.memPerNode / 2));
        cs_->addDevice(kSdMmioBase + n * kSdMmioStride, kSdMmioStride,
                       n * cfg.tilesPerNode, sdCards_.back().get());
        // Host-side init path: a fabric window over the SD region.
        auto sd_target =
            std::make_unique<SdWindowTarget>(cs_->memory(), sd_region);
        Addr fabric_base = kFabricSdBase +
                           static_cast<Addr>(n) * (cfg.memPerNode / 2);
        sd_target->setFabricBase(fabric_base);
        fabric_->addWindow(fabric_base, cfg.memPerNode / 2,
                           sd_target.get(), fpga_of(n),
                           strfmt("sd.node%u", n));
        fabricAdapters_.push_back(std::move(sd_target));
    }

    // Bridge peering (full mesh).
    for (auto &b : bridges_) {
        for (auto &peer : bridges_) {
            if (b->node() != peer->node())
                b->addPeer(peer->node(), peer->windowBase());
        }
    }

    // Cores.
    std::uint32_t total = cfg.totalTiles();
    for (GlobalTileId g = 0; g < total; ++g) {
        ports_.push_back(std::make_unique<CorePort>(*this, g));
        riscv::CoreConfig ccfg = riscv::corePreset(cfg.coreModel);
        ccfg.hartId = g;
        ccfg.resetPc = kDramBase;
        ccfg.decodeCache = cfg.core.decodeCache;
        ccfg.dataFastPath = cfg.core.dataFastPath;
        auto core = std::make_unique<riscv::RvCore>(ccfg, *ports_.back(),
                                                    &stats_);
        core->setEcallHandler([this, g](riscv::RvCore &c) {
            std::uint64_t num = c.reg(17); // a7
            if (num == 93) {               // exit
                c.requestExit(static_cast<std::int64_t>(c.reg(10)));
                return true;
            }
            if (num == 64) { // write(fd, buf, len)
                // Console UART + PLIC are shared devices; under the
                // phased engine this joins the device critical section.
                auto guard = cs_->parallelGuard();
                NodeId n = g / cfg_.tilesPerNode;
                Addr buf = c.reg(11);
                std::uint64_t len = c.reg(12);
                for (std::uint64_t i = 0; i < len; ++i) {
                    auto byte = static_cast<std::uint8_t>(
                        cs_->memory().load(buf + i, 1));
                    consoleUart(n).writeReg(
                        axi::LiteWrite{io::kUartRbrThr, byte, 0x1});
                }
                c.setReg(10, len);
                return true;
            }
            if (num == 63) { // read(fd, buf, len) from the console UART
                auto guard = cs_->parallelGuard();
                NodeId n = g / cfg_.tilesPerNode;
                Addr buf = c.reg(11);
                std::uint64_t len = c.reg(12);
                std::uint64_t got = 0;
                while (got < len && !consoleUart(n).rxEmpty()) {
                    std::uint32_t data = 0;
                    consoleUart(n).readReg(io::kUartRbrThr, data);
                    cs_->memory().store(buf + got, 1, data & 0xff);
                    ++got;
                }
                c.setReg(10, got);
                return true;
            }
            return false;
        });
        cores_.push_back(std::move(core));
    }

    // Lockstep differential checker: one golden hart per core, fed by
    // the commit observer. Built after the cores so attach() can mirror
    // their hart ids and reset pcs.
    if (cfg_.lockstep.enabled) {
        check::LockstepConfig lcfg = cfg_.lockstep;
        if (lcfg.memSize == 0) {
            lcfg.memBase = kDramBase;
            lcfg.memSize = static_cast<std::uint64_t>(cfg_.totalNodes()) *
                           cfg_.memPerNode;
        }
        lockstep_ =
            std::make_unique<check::LockstepChecker>(lcfg, &stats_);
        for (auto &c : cores_)
            lockstep_->attach(*c);
    }

    // Observability: configure the tracer and hand each traced component
    // its cached per-component handle (null when tracing is disabled or
    // the component is masked out, so every trace point costs exactly one
    // branch on a cached pointer).
    tracer_.configure(cfg_.trace, nodes);
    cs_->setTracer(&tracer_);
    fabric_->setTracer(&tracer_);
    for (auto &b : bridges_)
        b->setTracer(&tracer_);
    for (GlobalTileId g = 0; g < cores_.size(); ++g)
        cores_[g]->setTracer(&tracer_, g / cfg_.tilesPerNode,
                             cfg_.trace.coreStallCycles);

    // Phased-engine wiring: shared components learn they may be entered
    // from concurrent node phases, and mid-phase cross-node interactions
    // are rerouted through the mailbox. All of it is inert (and costs
    // one branch per hook) under the default sequential config.
    if (cfg_.parallel.active()) {
        router_.configure(nodes);
        cs_->setParallel(true);
        cs_->memory().setConcurrent(true);
        fabric_->setRouter(&router_);
        for (auto &b : bridges_)
            b->setRouter(&router_);
    }
}

Prototype::~Prototype() = default;

void
Prototype::writeTrace(const std::string &path) const
{
    fatalIf(!tracer_.enabled(), "writeTrace: tracing is disabled");
    const std::string &target = path.empty() ? cfg_.trace.path : path;
    fatalIf(target.empty(), "writeTrace: no output path configured");
    std::ofstream os(target, std::ios::binary);
    fatalIf(!os, "writeTrace: cannot open '" + target + "'");
    obs::writeBinary(tracer_, os);
    fatalIf(!os.good(), "writeTrace: write to '" + target + "' failed");
}

void
Prototype::deliverIrqPacket(const noc::Packet &pkt)
{
    GlobalTileId gid = pkt.dstNode * cfg_.tilesPerNode + pkt.dstTile;
    if (gid < cores_.size() && cores_[gid])
        riscv::IrqDepacketizer::apply(pkt, *cores_[gid]);
    stats_.counter("platform.irqPackets").increment();
}

accel::GngAccelerator &
Prototype::addGng(GlobalTileId tile)
{
    auto gng = std::make_unique<accel::GngAccelerator>(
        static_cast<std::uint32_t>(cfg_.seed + tile));
    Addr base = kAccelBase + accelWindows_.size() * kAccelStride;
    cs_->addDevice(base, kAccelStride, tile, gng.get());
    accelWindows_.emplace_back(tile, base);
    gngs_.push_back(std::move(gng));
    return *gngs_.back();
}

accel::MapleEngine &
Prototype::addMaple(GlobalTileId tile)
{
    auto eng = std::make_unique<accel::MapleEngine>(*cs_, tile);
    Addr base = kAccelBase + accelWindows_.size() * kAccelStride;
    cs_->addDevice(base, kAccelStride, tile, eng.get());
    accelWindows_.emplace_back(tile, base);
    maples_.push_back(std::move(eng));
    return *maples_.back();
}

Addr
Prototype::accelWindow(GlobalTileId tile) const
{
    for (const auto &[t, base] : accelWindows_) {
        if (t == tile)
            return base;
    }
    fatal("no accelerator registered at that tile");
}

void
Prototype::loadProgram(const riscv::Program &prog)
{
    for (const auto &seg : prog.segments) {
        cs_->memory().writeBytes(seg.base, seg.bytes.data(),
                                 seg.bytes.size());
        if (lockstep_)
            lockstep_->loadImage(seg.base, seg.bytes.data(),
                                 seg.bytes.size());
    }
}

riscv::Program
Prototype::loadSource(const std::string &source)
{
    riscv::Assembler as(kDramBase, kDramBase + 0x400000);
    riscv::Program prog = as.assemble(source);
    loadProgram(prog);
    for (auto &core : cores_)
        core->setPc(prog.entry);
    return prog;
}

riscv::Program
Prototype::loadSourceReplicated(const std::string &source)
{
    riscv::Assembler as(kDramBase, kDramBase + 0x400000);
    riscv::Program prog = as.assemble(source);
    for (NodeId n = 0; n < cfg_.totalNodes(); ++n) {
        Addr off = static_cast<Addr>(n) * cfg_.memPerNode;
        for (const auto &seg : prog.segments) {
            cs_->memory().writeBytes(seg.base + off, seg.bytes.data(),
                                     seg.bytes.size());
            if (lockstep_)
                lockstep_->loadImage(seg.base + off, seg.bytes.data(),
                                     seg.bytes.size());
        }
    }
    for (GlobalTileId g = 0; g < cores_.size(); ++g) {
        NodeId n = g / cfg_.tilesPerNode;
        cores_[g]->setPc(prog.entry +
                         static_cast<Addr>(n) * cfg_.memPerNode);
    }
    return prog;
}

namespace
{
/** Cumulative device-time budget for one WFI wait episode: a core that
 *  sees no interrupt within this many cycles is reported as kWfi (or
 *  parked permanently by runCores). Virtual cycles, so the bound is
 *  identical with idle skipping on and off. */
constexpr Cycles kWfiWaitBudget = 1'000'000;
} // namespace

bool
Prototype::waitForWake(const std::function<bool()> &woke)
{
    Cycles waited = 0;
    while (waited < kWfiWaitBudget) {
        if (woke())
            return true;
        // Next horizon, as deltas from the two (independent) clocks: the
        // earliest armed mtimecmp and the earliest queued event. Between
        // here and the nearer of the two, advancing time is pure
        // bookkeeping — no wire can flip, no event can fire.
        Cycles delta = sim::kNoDeadline;
        std::uint64_t tnext = clint_->nextTimerCycle();
        if (tnext != sim::kNoDeadline)
            delta = std::min(delta, tnext - clint_->mtime());
        Cycles enext = eq_.nextDeadline();
        if (enext != sim::kNoDeadline)
            delta = std::min(delta,
                             enext > eq_.now() ? enext - eq_.now()
                                               : Cycles{1});
        if (delta == sim::kNoDeadline)
            return woke(); // Nothing can ever fire again.
        delta = std::min(delta, kWfiWaitBudget - waited);
        if (cfg_.uncore.idleSkip) {
            clint_->setTime(clint_->mtime() + delta);
            eq_.runUntil(eq_.now() + delta);
        } else {
            // Reference path: poll every cycle. woke() cannot flip
            // strictly inside the span (no event fires there), so the
            // per-cycle polls are redundant — which is the point: this
            // is the honest slow baseline the fast path must replicate.
            for (Cycles i = 0; i < delta && !woke(); ++i) {
                clint_->setTime(clint_->mtime() + 1);
                eq_.runUntil(eq_.now() + 1);
            }
        }
        waited += delta;
    }
    return woke();
}

riscv::HaltReason
Prototype::runCore(GlobalTileId gid, std::uint64_t max_instructions)
{
    auto &c = core(gid);
    std::uint64_t executed = 0;
    while (executed < max_instructions) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(1000, max_instructions - executed);
        riscv::HaltReason r = c.run(chunk);
        executed += chunk;
        clint_->setTime(c.cycles());
        eq_.runUntil(c.cycles());
        if (r == riscv::HaltReason::kExited ||
            r == riscv::HaltReason::kEbreak)
            return r;
        if (r == riscv::HaltReason::kWfi) {
            // Let device time advance until an interrupt shows up.
            if (!waitForWake([&] { return c.interruptPending(); }))
                return riscv::HaltReason::kWfi;
        }
    }
    return riscv::HaltReason::kInstrBudget;
}

void
Prototype::runCores(const std::vector<GlobalTileId> &gids,
                    std::uint64_t max_instructions_each)
{
    if (cfg_.parallel.active()) {
        runCoresPhased(gids, max_instructions_each);
        return;
    }
    struct State
    {
        GlobalTileId gid;
        std::uint64_t executed = 0;
        bool done = false;
        bool parked = false; ///< In wfi, waiting for an interrupt.
    };
    std::vector<State> states;
    states.reserve(gids.size());
    for (GlobalTileId g : gids)
        states.push_back(State{g, 0, false, false});

    while (true) {
        // Un-park any core whose interrupt arrived — another core's MSIP
        // doorbell, a device, or a timer crossing from the wait below.
        for (auto &s : states) {
            if (s.parked && core(s.gid).interruptPending())
                s.parked = false;
        }
        // Pick the runnable core with the smallest local clock. A parked
        // core is skipped but stays live: its siblings keep running and
        // may wake it, which the historical all-wfi predicate (only able
        // to classify the core that just halted) got wrong — one core in
        // wfi used to stall the whole run even with others still active.
        State *next = nullptr;
        bool any_live = false;
        for (auto &s : states) {
            if (s.done)
                continue;
            any_live = true;
            if (s.parked)
                continue;
            if (!next ||
                core(s.gid).cycles() < core(next->gid).cycles())
                next = &s;
        }
        if (!any_live)
            break;
        if (!next) {
            // Every live core is parked in wfi: fast-forward device time
            // to the next wake horizon. A core that nothing can ever
            // wake is finished.
            if (!waitForWake([&] {
                    for (auto &s : states) {
                        if (!s.done && core(s.gid).interruptPending())
                            return true;
                    }
                    return false;
                })) {
                for (auto &s : states)
                    s.done = s.done || s.parked;
                break;
            }
            continue;
        }
        auto &c = core(next->gid);
        std::uint64_t chunk = std::min<std::uint64_t>(
            100, max_instructions_each - next->executed);
        if (chunk == 0) {
            next->done = true;
            continue;
        }
        riscv::HaltReason r = c.run(chunk);
        next->executed += chunk;
        Cycles maxc = 0;
        for (auto &s : states)
            maxc = std::max(maxc, core(s.gid).cycles());
        clint_->setTime(maxc);
        eq_.runUntil(maxc);
        if (r == riscv::HaltReason::kExited ||
            r == riscv::HaltReason::kEbreak)
            next->done = true;
        if (r == riscv::HaltReason::kWfi && !c.interruptPending())
            next->parked = true;
    }
}

/** Live phased-run state checkpoint() serializes into kResume/kStats:
 *  a closure writing the resume payload plus the un-merged stat shards.
 *  Both point into runCoresPhased()'s frame and are only dereferenced
 *  from the serial barrier context. */
struct Prototype::PhasedLive
{
    std::function<void(snap::Writer &)> saveResume;
    std::vector<sim::StatRegistry> *shards = nullptr;
};

void
Prototype::runCoresPhased(const std::vector<GlobalTileId> &gids,
                          std::uint64_t max_instructions_each)
{
    struct CoreState
    {
        GlobalTileId gid;
        std::uint64_t executed = 0;
        bool done = false;
        bool parked = false; ///< In wfi, waiting for an interrupt.
    };
    struct NodeState
    {
        std::vector<CoreState> cores;
        /** Written by the owning worker, read at the barrier (the epoch
         *  barrier orders the accesses). */
        bool progressed = false;
    };

    std::uint32_t nodes = cfg_.totalNodes();

    // Quantum: the PCIe one-way latency is the lookahead — nothing one
    // node does can reach another sooner — so it is both the default and
    // the largest quantum that stays conservative.
    Cycles quantum = cfg_.parallel.quantum ? cfg_.parallel.quantum
                                           : cfg_.timing.pcieOneWay();

    // A "node.wedge" fault rule simulates a hung node: once the injector
    // fires for a node at a barrier, that node stops committing until
    // the watchdog rolls the run back. Disarming is deliberately not
    // part of any checkpoint — recovery must not replay the wedge.
    bool wedge_armed = false;
    if (faultInjector_) {
        for (const auto &rule : faultInjector_->plan().rules) {
            if (rule.site.rfind("node.wedge", 0) == 0)
                wedge_armed = true;
        }
    }
    std::vector<bool> wedged(nodes, false);
    bool wedge_disarmed = false;
    std::uint64_t wedge_count = 0;

    sim::Watchdog watchdog(cfg_.watchdog, nodes, &stats_);
    std::string last_checkpoint;
    if (cfg_.snapshot.enabled())
        last_checkpoint = snap::latestCheckpoint(cfg_.snapshot.dir);

    std::vector<NodeState> ns;
    Cycles boundary = 0;
    Cycles next_snap = 0;
    std::uint64_t idle_epochs = 0;
    // Per-node stat shards: all stats produced inside a node phase land
    // in the node's shard and merge back in node order after the run.
    std::vector<sim::StatRegistry> shards;
    bool recovery_pending = false;

    // (Re)builds the run bookkeeping: fresh, or — after restore() left a
    // valid resume section — continuing the interrupted run exactly
    // where its checkpoint barrier stopped.
    auto init_run = [&]() {
        ns.clear();
        ns.resize(nodes);
        for (GlobalTileId g : gids)
            ns.at(g / cfg_.tilesPerNode).cores.push_back(CoreState{g});
        if (resume_.valid) {
            fatalIf(resume_.gids.size() != gids.size(),
                    strfmt("checkpoint resumes %zu cores, this run has "
                           "%zu",
                           resume_.gids.size(), gids.size()));
            for (std::size_t i = 0; i < resume_.gids.size(); ++i) {
                GlobalTileId g = resume_.gids[i];
                bool found = false;
                for (auto &node : ns) {
                    for (auto &s : node.cores) {
                        if (s.gid != g)
                            continue;
                        s.executed = resume_.executed[i];
                        s.done = resume_.done[i] != 0;
                        s.parked = resume_.parked[i] != 0;
                        found = true;
                    }
                }
                fatalIf(!found,
                        strfmt("checkpoint resumes core %u which is not "
                               "part of this run",
                               g));
            }
            boundary = resume_.boundary + quantum;
            idle_epochs = resume_.idleEpochs;
            if (resume_.shards.size() == nodes)
                shards = std::move(resume_.shards);
            else
                shards = std::vector<sim::StatRegistry>(nodes);
            // Checkpoints only happen at interval marks, so the saved
            // barrier is itself a mark: the next one is an interval out.
            next_snap = resume_.boundary + cfg_.snapshot.interval;
            resume_ = PhasedResume{};
        } else {
            boundary = eq_.now();
            for (GlobalTileId g : gids)
                boundary = std::max(boundary, core(g).cycles());
            // The interval clock starts at the run's base cycle so the
            // checkpoint set never depends on the worker count.
            next_snap = boundary + cfg_.snapshot.interval;
            boundary += quantum;
            shards = std::vector<sim::StatRegistry>(nodes);
            idle_epochs = 0;
        }
    };

    // checkpoint() reaches the live bookkeeping through live_: the
    // resume section snapshots per-core budgets at the current barrier.
    PhasedLive live;
    live.shards = &shards;
    live.saveResume = [&](snap::Writer &w) {
        w.boolean(true);
        w.u64(boundary);
        w.u64(idle_epochs);
        std::uint64_t count = 0;
        for (auto &node : ns)
            count += node.cores.size();
        w.u64(count);
        for (auto &node : ns) {
            for (auto &s : node.cores) {
                w.u32(s.gid);
                w.u64(s.executed);
                w.u8(s.done ? 1 : 0);
                w.u8(s.parked ? 1 : 0);
            }
        }
    };
    struct LiveScope
    {
        Prototype *p;
        ~LiveScope() { p->live_ = nullptr; }
    } live_scope{this};
    live_ = &live;

    auto node_phase = [&](std::uint32_t n) {
        sim::ActingNodeScope acting(n);
        sim::StatRegistry::Redirect redirect(&stats_, &shards[n]);
        if (wedged[n])
            return; // Hung node: burns the quantum without committing.
        NodeState &node = ns[n];
        while (true) {
            // Smallest-local-clock-first over this node's live cores —
            // the sequential engine's policy restricted to one node.
            CoreState *next = nullptr;
            for (auto &s : node.cores) {
                if (s.done || s.parked)
                    continue;
                if (core(s.gid).cycles() >= boundary)
                    continue;
                if (!next ||
                    core(s.gid).cycles() < core(next->gid).cycles())
                    next = &s;
            }
            if (!next)
                return;
            auto &c = core(next->gid);
            std::uint64_t chunk = std::min<std::uint64_t>(
                100, max_instructions_each - next->executed);
            if (chunk == 0) {
                next->done = true;
                continue;
            }
            riscv::HaltReason r = c.run(chunk);
            next->executed += chunk;
            node.progressed = true;
            if (r == riscv::HaltReason::kExited ||
                r == riscv::HaltReason::kEbreak) {
                next->done = true;
            } else if (r == riscv::HaltReason::kWfi) {
                if (!c.interruptPending())
                    next->parked = true; // Barriers re-arm on wake.
            }
        }
    };

    // An epoch with no instructions, no mailbox traffic and no device
    // events cannot create progress later except through timer interrupts
    // raised by the advancing mtime; bound how long we wait for one.
    const std::uint64_t idle_limit =
        std::max<std::uint64_t>(1, 1'000'000 / quantum);

    auto barrier = [&](std::uint64_t) -> bool {
        // Serial context: replay deferred cross-node interactions in
        // deterministic mailbox order, then advance shared device time
        // to the boundary.
        std::uint64_t delivered = router_.drain();
        clint_->setTime(boundary);
        std::uint64_t events = eq_.runUntil(boundary);

        bool any_live = false;
        bool progress = delivered > 0 || events > 0;
        for (auto &node : ns) {
            if (node.progressed)
                progress = true;
            node.progressed = false;
            for (auto &s : node.cores) {
                if (s.done)
                    continue;
                if (s.parked && core(s.gid).interruptPending()) {
                    s.parked = false;
                    progress = true;
                }
                any_live = true;
            }
        }
        if (!any_live)
            return false;
        if (progress) {
            idle_epochs = 0;
        } else if (++idle_epochs >= idle_limit) {
            return false; // Every live core is parked with no wake source.
        }

        // Wedge injection: decided once per node per barrier, in node
        // order, in the serial context — deterministic for any worker
        // count.
        if (wedge_armed && !wedge_disarmed && faultInjector_) {
            for (std::uint32_t n = 0; n < nodes; ++n) {
                if (wedged[n])
                    continue;
                if (faultInjector_->decide(
                        strfmt("node.wedge.node%u", n))) {
                    wedged[n] = true;
                    ++wedge_count;
                    stats_.counter("fault.nodeWedge").increment();
                }
            }
        }

        // Watchdog: per-node committed-instruction heartbeats. A node
        // whose cores are all done never stalls; a committing node
        // re-arms its own timer.
        if (watchdog.config().enabled()) {
            std::vector<std::uint64_t> committed(nodes, 0);
            std::vector<bool> live_nodes(nodes, false);
            for (std::uint32_t n = 0; n < nodes; ++n) {
                for (auto &s : ns[n].cores) {
                    committed[n] += core(s.gid).instret();
                    if (!s.done)
                        live_nodes[n] = true;
                }
            }
            auto verdict = watchdog.observe(boundary, committed,
                                            live_nodes);
            if (verdict.stallDetected) {
                switch (cfg_.watchdog.action) {
                  case sim::WatchdogAction::kPanic:
                    panic(strfmt(
                        "watchdog: node %u committed nothing for %llu "
                        "cycles",
                        verdict.stalledNodes.front(),
                        static_cast<unsigned long long>(
                            cfg_.watchdog.stallCycles)));
                  case sim::WatchdogAction::kRecover:
                    if (!last_checkpoint.empty() &&
                        watchdog.recoveries() <
                            cfg_.watchdog.maxRecoveries) {
                        recovery_pending = true;
                        return false;
                    }
                    break; // Nothing to roll back to: report only.
                  case sim::WatchdogAction::kReport:
                    break;
                }
            }
        }

        // Periodic checkpoint: first barrier at or past each interval
        // mark, after the stat counter bumps so the file itself records
        // how many checkpoints exist once it is restored.
        if (cfg_.snapshot.enabled() && boundary >= next_snap) {
            std::string path = cfg_.snapshot.dir + "/" +
                               snap::checkpointFileName(boundary);
            if (tryCheckpoint(path)) {
                last_checkpoint = path;
                snap::pruneCheckpoints(cfg_.snapshot.dir,
                                       cfg_.snapshot.keep);
            }
            next_snap = boundary + cfg_.snapshot.interval;
        }

        if (barrierProbe_)
            barrierProbe_(boundary);

        // Event-horizon idle skip (uncore.idleSkip): after an epoch with
        // no progress, every barrier strictly before the next horizon is
        // provably inert — node phases run nothing (all runnable cores
        // sit at or past the boundary), drain() finds an empty mailbox,
        // setTime()/runUntil() cross no deadline, the watchdog observes
        // below every per-node deadline and no checkpoint mark passes.
        // Jump straight to the first barrier that can observe anything,
        // charging the skipped barriers to the idle-epoch budget so the
        // give-up point replicates exactly. Disabled whenever a barrier
        // has a side channel the horizon cannot see: an armed wedge
        // rule consumes injector RNG per barrier, and a barrier probe
        // is an arbitrary observer.
        if (cfg_.uncore.idleSkip && !progress && !barrierProbe_ &&
            !(wedge_armed && !wedge_disarmed) && router_.pending() == 0) {
            Cycles horizon = sim::kNoDeadline;
            for (auto &node : ns) {
                for (auto &s : node.cores) {
                    if (!s.done && !s.parked)
                        horizon = std::min(horizon,
                                           core(s.gid).cycles() + 1);
                }
            }
            std::uint64_t tnext = clint_->nextTimerCycle();
            horizon = std::min<Cycles>(horizon, tnext);
            horizon = std::min(horizon, eq_.nextDeadline());
            if (cfg_.snapshot.enabled())
                horizon = std::min(horizon, next_snap);
            if (watchdog.config().enabled())
                horizon = std::min(horizon, watchdog.nextDeadline());
            // Barriers the idle-epoch budget still allows before the
            // run gives up; >= 1 or the check above would have fired.
            std::uint64_t avail = idle_limit - idle_epochs;
            if (horizon == sim::kNoDeadline ||
                horizon > boundary + avail * quantum) {
                // No wake source, or one past the give-up point: the
                // run ends idle. Replicate the off-path's final barrier
                // exactly — time advanced to it (both calls are wire/
                // event no-ops below the horizon), budget exhausted.
                boundary += avail * quantum;
                clint_->setTime(boundary);
                eq_.runUntil(boundary);
                idle_epochs = idle_limit;
                return false;
            }
            if (horizon > boundary + quantum) {
                // First barrier at or past the horizon; the barriers
                // strictly between would each have idled.
                std::uint64_t k =
                    (horizon - boundary + quantum - 1) / quantum;
                idle_epochs += k - 1;
                boundary += k * quantum;
                return true;
            }
        }

        boundary += quantum;
        return true;
    };

    std::uint32_t workers =
        std::min(std::max<std::uint32_t>(1, cfg_.parallel.threads), nodes);
    sim::ParallelExecutor exec(workers);

    while (true) {
        init_run();
        recovery_pending = false;
        exec.run(nodes, node_phase, barrier);
        if (!recovery_pending)
            break;

        // Roll back to the last good checkpoint and go again. restore()
        // rewinds the registry to the checkpoint's counts, so the
        // watchdog's lifetime totals are re-applied afterwards — the
        // recovery must stay visible in the final stats.
        restore(last_checkpoint);
        watchdog.noteRecovery();
        watchdog.rebase();
        auto &stalls = stats_.counter("watchdog.stallsDetected");
        if (watchdog.stallsDetected() > stalls.value())
            stalls.increment(watchdog.stallsDetected() - stalls.value());
        auto &recoveries = stats_.counter("watchdog.recoveries");
        if (watchdog.recoveries() > recoveries.value())
            recoveries.increment(watchdog.recoveries() -
                                 recoveries.value());
        auto &wedges = stats_.counter("fault.nodeWedge");
        if (wedge_count > wedges.value())
            wedges.increment(wedge_count - wedges.value());
        wedge_disarmed = true;
        std::fill(wedged.begin(), wedged.end(), false);
    }

    for (std::uint32_t n = 0; n < nodes; ++n)
        stats_.mergeFrom(shards[n]);
}

namespace
{
/** Event budgets bounding quiesce: the periodic hook gives up (and
 *  skips the checkpoint) long before an explicit checkpoint() does. */
constexpr std::uint64_t kAutoQuiesceBudget = 200'000;
constexpr std::uint64_t kExplicitQuiesceBudget = 10'000'000;
} // namespace

std::uint64_t
Prototype::configFingerprint() const
{
    // FNV-1a over the fields that shape serialized state. A checkpoint
    // from a differently shaped prototype must be rejected up front;
    // the worker-thread count is excluded on purpose, as are
    // core.decodeCache, core.dataFastPath and uncore.idleSkip
    // (transient, checkpoint-invisible state — any setting must accept
    // any setting's checkpoints).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (char c : cfg_.name())
        mix(static_cast<unsigned char>(c));
    mix(cfg_.memPerNode);
    mix(cfg_.llcSliceBytes);
    mix(cfg_.seed);
    mix(cfg_.interNodeInterconnect ? 1 : 0);
    mix(static_cast<std::uint64_t>(cfg_.coreModel));
    mix(static_cast<std::uint64_t>(cfg_.homing));
    mix(cfg_.parallel.quantum);
    mix(cfg_.reliability.enabled ? 1 : 0);
    mix(cfg_.trace.enabled ? 1 : 0);
    mix(cfg_.trace.enabled ? cfg_.trace.ringCapacity : 0);
    return h;
}

bool
Prototype::quiesce(std::uint64_t max_events)
{
    while (true) {
        router_.drain();
        if (eq_.empty())
            return true;
        if (max_events == 0)
            return false;
        Cycles next = eq_.nextEventTime();
        std::uint64_t ran = eq_.runUntil(next);
        max_events -= std::min(max_events, ran);
    }
}

void
Prototype::writeCheckpoint(const std::string &path)
{
    panicIf(!eq_.empty(), "writeCheckpoint() with pending device events");
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    fatalIf(!os, strfmt("cannot write checkpoint '%s'", path.c_str()));
    snap::Writer w(os);
    w.setConfigHash(configFingerprint());

    w.begin(snap::Section::kMeta);
    w.str(cfg_.name());
    w.u64(cfg_.seed);
    w.u32(cfg_.totalNodes());
    w.u32(cfg_.tilesPerNode);
    w.u64(eq_.now());
    std::uint64_t instret = 0;
    for (const auto &c : cores_)
        instret += c->instret();
    w.u64(instret);
    w.end();

    w.begin(snap::Section::kTime);
    w.u64(eq_.now());
    w.u64(probeClock_);
    w.end();

    w.begin(snap::Section::kResume);
    if (live_ && live_->saveResume)
        live_->saveResume(w);
    else
        w.boolean(false);
    w.end();

    w.begin(snap::Section::kCores);
    w.u64(cores_.size());
    for (const auto &c : cores_)
        c->saveState(w);
    w.end();

    w.begin(snap::Section::kMemory);
    cs_->memory().saveState(w);
    w.end();

    w.begin(snap::Section::kCache);
    cs_->saveState(w);
    w.end();

    w.begin(snap::Section::kBridges);
    w.u64(bridges_.size());
    for (const auto &b : bridges_)
        b->saveState(w);
    w.end();

    w.begin(snap::Section::kFabric);
    fabric_->saveState(w);
    w.end();

    w.begin(snap::Section::kDevices);
    clint_->saveState(w);
    plic_->saveState(w);
    w.u64(uarts_.size());
    for (const auto &u : uarts_)
        u->saveState(w);
    w.u64(serials_.size());
    for (const auto &s : serials_)
        s.saveState(w);
    w.u64(sdCards_.size());
    for (const auto &sd : sdCards_)
        sd->saveState(w);
    w.u64(drams_.size());
    for (const auto &d : drams_)
        d->saveState(w);
    w.u64(memctrls_.size());
    for (const auto &m : memctrls_)
        m->saveState(w);
    w.end();

    w.begin(snap::Section::kStats);
    snap::saveRegistry(w, stats_);
    if (live_ && live_->shards) {
        w.u32(static_cast<std::uint32_t>(live_->shards->size()));
        for (const auto &shard : *live_->shards)
            snap::saveRegistry(w, shard);
    } else {
        w.u32(0);
    }
    w.end();

    w.begin(snap::Section::kTracer);
    tracer_.saveState(w);
    w.end();

    w.begin(snap::Section::kFault);
    w.boolean(faultInjector_ != nullptr);
    if (faultInjector_)
        snap::saveFaultInjector(w, *faultInjector_);
    w.end();

    w.finish();
    os.flush();
    fatalIf(!os.good(),
            strfmt("I/O error writing checkpoint '%s'", path.c_str()));
}

void
Prototype::checkpoint(const std::string &path)
{
    fatalIf(!quiesce(kExplicitQuiesceBudget),
            strfmt("checkpoint '%s': pending device events will not "
                   "drain (degraded link probes?)",
                   path.c_str()));
    stats_.counter("snap.checkpoints").increment();
    writeCheckpoint(path);
}

bool
Prototype::tryCheckpoint(const std::string &path)
{
    if (!quiesce(kAutoQuiesceBudget)) {
        warn(strfmt("skipping checkpoint '%s': device events will not "
                    "drain",
                    path.c_str()));
        stats_.counter("snap.skipped").increment();
        return false;
    }
    stats_.counter("snap.checkpoints").increment();
    writeCheckpoint(path);
    return true;
}

void
Prototype::restore(const std::string &path)
{
    snap::Reader r(path);
    fatalIf(r.version() != snap::kSmckVersion,
            strfmt("checkpoint '%s' is format v%u, this build reads v%u",
                   path.c_str(), r.version(), snap::kSmckVersion));
    fatalIf(r.configHash() != configFingerprint(),
            strfmt("checkpoint '%s' was written by a differently "
                   "configured prototype (config hash %016llx, expected "
                   "%016llx)",
                   path.c_str(),
                   static_cast<unsigned long long>(r.configHash()),
                   static_cast<unsigned long long>(configFingerprint())));

    r.open(snap::Section::kTime);
    Cycles now = r.u64();
    Cycles probe = r.u64();
    eq_.reset();
    eq_.jumpTo(now);
    probeClock_ = probe;

    r.open(snap::Section::kCores);
    std::uint64_t ncores = r.u64();
    fatalIf(ncores != cores_.size(),
            strfmt("checkpoint has %llu cores, prototype has %zu",
                   static_cast<unsigned long long>(ncores),
                   cores_.size()));
    for (auto &c : cores_)
        c->restoreState(r);

    r.open(snap::Section::kMemory);
    cs_->memory().restoreState(r);

    r.open(snap::Section::kCache);
    cs_->restoreState(r);

    r.open(snap::Section::kBridges);
    std::uint64_t nbridges = r.u64();
    fatalIf(nbridges != bridges_.size(),
            strfmt("checkpoint has %llu bridges, prototype has %zu",
                   static_cast<unsigned long long>(nbridges),
                   bridges_.size()));
    for (auto &b : bridges_)
        b->restoreState(r);

    r.open(snap::Section::kFabric);
    fabric_->restoreState(r);

    r.open(snap::Section::kDevices);
    clint_->restoreState(r);
    plic_->restoreState(r);
    auto check_count = [&](const char *what, std::uint64_t got,
                           std::size_t want) {
        fatalIf(got != want,
                strfmt("checkpoint has %llu %s, prototype has %zu",
                       static_cast<unsigned long long>(got), what, want));
    };
    check_count("UARTs", r.u64(), uarts_.size());
    for (auto &u : uarts_)
        u->restoreState(r);
    check_count("serials", r.u64(), serials_.size());
    for (auto &s : serials_)
        s.restoreState(r);
    check_count("SD cards", r.u64(), sdCards_.size());
    for (auto &sd : sdCards_)
        sd->restoreState(r);
    check_count("DRAM channels", r.u64(), drams_.size());
    for (auto &d : drams_)
        d->restoreState(r);
    check_count("memory controllers", r.u64(), memctrls_.size());
    for (auto &m : memctrls_)
        m->restoreState(r);

    r.open(snap::Section::kStats);
    snap::restoreRegistry(r, stats_);
    std::uint32_t shard_count = r.u32();
    resume_.shards = std::vector<sim::StatRegistry>(shard_count);
    for (auto &shard : resume_.shards)
        snap::restoreRegistry(r, shard);

    r.open(snap::Section::kTracer);
    tracer_.restoreState(r);

    r.open(snap::Section::kResume);
    resume_.valid = r.boolean();
    resume_.gids.clear();
    resume_.executed.clear();
    resume_.done.clear();
    resume_.parked.clear();
    if (resume_.valid) {
        resume_.boundary = r.u64();
        resume_.idleEpochs = r.u64();
        std::uint64_t count = r.u64();
        resume_.gids.reserve(count);
        resume_.executed.reserve(count);
        resume_.done.reserve(count);
        resume_.parked.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            resume_.gids.push_back(r.u32());
            resume_.executed.push_back(r.u64());
            resume_.done.push_back(r.u8());
            resume_.parked.push_back(r.u8());
        }
    }

    r.open(snap::Section::kFault);
    bool has_fault = r.boolean();
    fatalIf(has_fault != (faultInjector_ != nullptr),
            strfmt("checkpoint '%s' and prototype disagree on fault "
                   "injection",
                   path.c_str()));
    if (faultInjector_)
        snap::restoreFaultInjector(r, *faultInjector_);
}

std::unique_ptr<os::GuestSystem>
Prototype::makeGuest(os::NumaMode mode, std::uint64_t seed)
{
    auto guest = std::make_unique<os::GuestSystem>(*cs_, mode, seed);
    // MMIO is identity-mapped (not paged).
    guest->mapDeviceIdentity(kClintBase, kClintSize);
    guest->mapDeviceIdentity(kSdMmioBase,
                             kSdMmioStride * cfg_.totalNodes());
    guest->mapDeviceIdentity(kUartBase,
                             kUartNodeStride * cfg_.totalNodes());
    guest->mapDeviceIdentity(kAccelBase, kAccelStride * 64);
    return guest;
}

Addr
Prototype::addressHomedAt(GlobalTileId to) const
{
    NodeId node = to / cfg_.tilesPerNode;
    TileId tile = to % cfg_.tilesPerNode;
    Addr base = kDramBase + static_cast<Addr>(node) * cfg_.memPerNode +
                cfg_.memPerNode / 4;
    for (std::uint64_t k = 0; k < 100000; ++k) {
        Addr line = base + k * kCacheLineBytes;
        auto [hn, ht] = cs_->homeOf(line);
        if (hn == node && ht == tile)
            return line;
    }
    panic("no address homed at the requested tile found");
}

Cycles
Prototype::measureRoundTrip(GlobalTileId from, GlobalTileId to)
{
    Addr addr = addressHomedAt(to);
    probeClock_ += 1'000'000;
    // Warm the home LLC slice with an access from the home tile itself,
    // then drop every private copy so the probe is a clean two-hop
    // requester -> home -> requester transaction.
    cs_->access(to, addr, cache::AccessType::kLoad, 8, probeClock_);
    cs_->flushPrivate(to);
    cs_->flushPrivate(from);
    probeClock_ += 1'000'000;
    auto r = cs_->access(from, addr, cache::AccessType::kLoad, 8,
                         probeClock_);
    cs_->flushPrivate(from);
    return r.latency;
}

} // namespace smappic::platform
