#include "cost/cost_model.hpp"

#include <algorithm>
#include <limits>

#include "sim/log.hpp"

namespace smappic::cost
{

const std::vector<Ec2Instance> &
instanceCatalog()
{
    // Prices and specs from the paper's Tables 1 and 3 (on-demand, 2022).
    static const std::vector<Ec2Instance> kCatalog = {
        {"f1.2xlarge", 8, 122, 470, 1, 64, 1.65, 8000},
        {"f1.4xlarge", 16, 244, 940, 2, 128, 3.30, 16000},
        {"f1.16xlarge", 64, 976, 3760, 8, 512, 13.20, 64000},
        {"t3.medium", 2, 4, 0, 0, 0, 0.0416, 0},
        {"t3.large", 2, 8, 0, 0, 0, 0.0832, 0},
        {"r5.2xlarge", 8, 64, 0, 0, 0, 0.504, 0},
        {"r5.12xlarge", 48, 384, 0, 0, 0, 3.024, 0},
        {"r5.16xlarge", 64, 512, 0, 0, 0, 4.032, 0},
    };
    return kCatalog;
}

const std::vector<ToolModel> &
toolCatalog()
{
    // Throughput models:
    //  - SMAPPIC: Ariane at 100 MHz, CPI ~1.5 -> ~67 target MIPS; the
    //    1x4x2 configuration packs 4 independent prototypes per FPGA.
    //  - FireSim single-node: similar frequency, one quad-core system.
    //  - FireSim supernode: 4 systems but network simulation caps the
    //    simulation clock well below SMAPPIC's direct-mapped 100 MHz.
    //  - Sniper: parallel x86 simulator, needs 2 vCPUs and 8 GB.
    //  - gem5: cycle-level, ~0.15 MIPS, large host memory.
    //  - Verilator: RTL simulation; rate derived from the paper's
    //    hello-world measurement (65 s vs 4 ms on SMAPPIC).
    static const std::vector<ToolModel> kTools = {
        {"SMAPPIC", 1, 8, 1, 66.7, 4},
        {"FireSim single-node", 1, 8, 1, 62.0, 1},
        {"FireSim supernode", 1, 8, 1, 26.0, 4},
        {"Sniper", 2, 8, 0, 1.6, 1},
        {"gem5", 1, 64, 0, 0.15, 1},
        {"Verilator", 1, 8, 0, 66.7 / 16250.0, 1},
    };
    return kTools;
}

const std::vector<Benchmark> &
specint2017()
{
    // Representative dynamic instruction counts for the "test" input
    // (billions); mcf's gem5 run needs a 350 GB host (paper section 4.5).
    static const std::vector<Benchmark> kBench = {
        {"deepsjeng", 4.4, 64},  {"exchange2", 13.9, 64},
        {"gcc", 1.2, 64},        {"leela", 4.1, 64},
        {"mcf", 6.5, 350},       {"omnetpp", 0.9, 64},
        {"perlbench", 2.7, 64},  {"x264", 4.6, 64},
        {"xalancbmk", 1.2, 64},  {"xz", 3.3, 128},
    };
    return kBench;
}

const Ec2Instance &
instanceNamed(const std::string &name)
{
    for (const auto &i : instanceCatalog()) {
        if (i.name == name)
            return i;
    }
    fatal("unknown EC2 instance: " + name);
}

const ToolModel &
toolNamed(const std::string &name)
{
    for (const auto &t : toolCatalog()) {
        if (t.name == name)
            return t;
    }
    fatal("unknown tool: " + name);
}

const Ec2Instance &
cheapestInstanceFor(std::uint32_t vcpus, double mem_gb, std::uint32_t fpgas)
{
    const Ec2Instance *best = nullptr;
    for (const auto &i : instanceCatalog()) {
        if (i.vcpus < vcpus || i.memGb < mem_gb || i.fpgas < fpgas)
            continue;
        if (!best || i.pricePerHour < best->pricePerHour)
            best = &i;
    }
    fatalIf(best == nullptr, "no instance satisfies the requirements");
    return *best;
}

double
modelingTimeHours(const ToolModel &tool, const Benchmark &bench)
{
    double seconds = bench.gigaInstructions * 1e9 / (tool.mips * 1e6);
    return seconds / 3600.0;
}

double
modelingCostDollars(const ToolModel &tool, const Benchmark &bench)
{
    double mem = tool.memGbNeeded;
    if (tool.name == "gem5")
        mem = std::max(mem, bench.gem5HostMemGb);
    const Ec2Instance &inst =
        cheapestInstanceFor(tool.vcpusNeeded, mem, tool.fpgasNeeded);
    double hours = modelingTimeHours(tool, bench);
    return hours * inst.pricePerHour /
           static_cast<double>(tool.systemsPerInstance);
}

double
cloudCostDollars(double days)
{
    return days * 24.0 * instanceNamed("f1.2xlarge").pricePerHour;
}

double
onPremCostDollars(double days)
{
    (void)days; // Upfront hardware price; negligible marginal cost.
    return instanceNamed("f1.2xlarge").hardwarePrice;
}

double
crossoverDays()
{
    return instanceNamed("f1.2xlarge").hardwarePrice /
           (24.0 * instanceNamed("f1.2xlarge").pricePerHour);
}

double
verilatorHelloSeconds()
{
    return 65.0; // Paper section 4.5.
}

double
smappicHelloSeconds()
{
    return 0.004;
}

double
verilatorCostEfficiencyRatio()
{
    // Time ratio scaled by instance price and the 4 prototypes SMAPPIC
    // packs per FPGA in the 1x4x2 configuration.
    double time_ratio = verilatorHelloSeconds() / smappicHelloSeconds();
    double price_ratio = instanceNamed("f1.2xlarge").pricePerHour /
                         instanceNamed("t3.medium").pricePerHour;
    return time_ratio / price_ratio * 4.0;
}

} // namespace smappic::cost
