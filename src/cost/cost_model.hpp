/**
 * @file
 * Cloud cost modeling (paper section 4.5, Tables 1 and 3, Figs 13-14).
 *
 * Reproduces the paper's cost comparison of architecture modeling methods
 * in the cloud: the EC2 instance catalog with prices, per-tool host
 * requirements and throughput models, SPECint 2017 "test" workload
 * descriptors, and the cloud-vs-on-premises amortization analysis.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smappic::cost
{

/** One EC2 instance offering (Table 1 / Table 3). */
struct Ec2Instance
{
    std::string name;
    std::uint32_t vcpus = 0;
    double memGb = 0;
    double storageGb = 0;
    std::uint32_t fpgas = 0;
    double fpgaMemGb = 0;
    double pricePerHour = 0;
    double hardwarePrice = 0; ///< On-prem equivalent (F1 family only).
};

/** A modeling tool with host requirements and a throughput model. */
struct ToolModel
{
    std::string name;
    std::uint32_t vcpusNeeded = 1;
    double memGbNeeded = 8;
    std::uint32_t fpgasNeeded = 0;
    /** Simulated target MIPS of one system instance. */
    double mips = 1.0;
    /** Independent target systems modeled per host instance. */
    std::uint32_t systemsPerInstance = 1;
};

/** One benchmark descriptor (SPECint 2017, "test" input). */
struct Benchmark
{
    std::string name;
    /** Dynamic instruction count in billions (representative estimates
     *  for the test input size; the paper does not publish counts). */
    double gigaInstructions = 1.0;
    /** gem5 host memory demand in GB (mcf needs a 350 GB host). */
    double gem5HostMemGb = 64.0;
};

/** The EC2 catalog used by the paper (F1 family + cheap CPU instances). */
const std::vector<Ec2Instance> &instanceCatalog();

/** Tool models: SMAPPIC, FireSim single/supernode, Sniper, gem5,
 *  Verilator. */
const std::vector<ToolModel> &toolCatalog();

/** SPECint 2017 with the "test" input. */
const std::vector<Benchmark> &specint2017();

/** Lookup helpers. @throws FatalError when not found. */
const Ec2Instance &instanceNamed(const std::string &name);
const ToolModel &toolNamed(const std::string &name);

/**
 * Cheapest catalog instance satisfying the requirements (Table 3's
 * derivation). gem5's per-benchmark memory demand is handled by passing
 * the benchmark's gem5HostMemGb.
 */
const Ec2Instance &cheapestInstanceFor(std::uint32_t vcpus, double mem_gb,
                                       std::uint32_t fpgas);

/** Hours to run @p bench on @p tool (one system). */
double modelingTimeHours(const ToolModel &tool, const Benchmark &bench);

/**
 * Dollars to run @p bench on @p tool, using the cheapest suitable
 * instance and amortizing over the tool's systems-per-instance (Fig 13).
 */
double modelingCostDollars(const ToolModel &tool, const Benchmark &bench);

/** Fig 14: cumulative dollars after @p days of continuous modeling. */
double cloudCostDollars(double days);
double onPremCostDollars(double days);

/** Fig 14's crossover: days of continuous use where cloud = on-prem. */
double crossoverDays();

/** Section 4.5's Verilator comparison (hello-world). */
double verilatorHelloSeconds();
double smappicHelloSeconds();
/** SMAPPIC-vs-Verilator cost-efficiency factor (paper: ~1600x). */
double verilatorCostEfficiencyRatio();

} // namespace smappic::cost
