#include "pcie/pcie_fabric.hpp"

#include <algorithm>

#include "obs/tracer.hpp"
#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::pcie
{

PcieFabric::PcieFabric(sim::EventQueue &eq, Cycles one_way,
                       double bytes_per_cycle, sim::StatRegistry *stats)
    : eq_(eq), oneWay_(one_way), bytesPerCycle_(bytes_per_cycle),
      stats_(stats)
{
}

void
PcieFabric::addWindow(Addr base, std::uint64_t size, axi::Target *target,
                      FpgaId owner, std::string name)
{
    fatalIf(target == nullptr, "fabric window '" + name + "' has no target");
    fatalIf(size == 0, "fabric window '" + name + "' has zero size");
    for (const auto &w : windows_) {
        bool disjoint = base + size <= w.base || w.base + w.size <= base;
        fatalIf(!disjoint, "fabric windows '" + name + "' and '" + w.name +
                               "' overlap");
    }
    windows_.push_back(FabricWindow{base, size, target, owner,
                                    std::move(name)});
}

const PcieFabric::FabricWindow *
PcieFabric::decode(Addr addr) const
{
    for (const auto &w : windows_) {
        if (addr >= w.base && addr - w.base < w.size)
            return &w;
    }
    return nullptr;
}

sim::TrafficShaper &
PcieFabric::linkOf(FpgaId endpoint)
{
    for (auto &[id, shaper] : links_) {
        if (id == endpoint)
            return shaper;
    }
    links_.emplace_back(endpoint,
                        sim::TrafficShaper(0, bytesPerCycle_));
    return links_.back().second;
}

Cycles
PcieFabric::transferArrival(FpgaId src, std::uint64_t bytes)
{
    // Serialize on the source's link, then propagate one way.
    Cycles sent = linkOf(src).send(eq_.now(), bytes);
    transfers_ += 1;
    bytesMoved_ += bytes;
    if (stats_) {
        stats_->counter("pcie.transfers").increment();
        stats_->counter("pcie.bytes").increment(bytes);
    }
    return sent + oneWay_;
}

void
PcieFabric::setTracer(obs::Tracer *tracer)
{
    tracer_ = tracer ? tracer->handleFor(obs::Component::kPcie) : nullptr;
}

void
PcieFabric::traceTransfer(bool is_write, FpgaId src, Addr addr,
                          std::uint64_t bytes, Cycles arrival)
{
    obs::TraceEvent ev = obs::event(is_write ? obs::EventKind::kPcieWrite
                                             : obs::EventKind::kPcieRead);
    ev.cycle = eq_.now();
    ev.duration = static_cast<std::uint32_t>(arrival - eq_.now());
    ev.arg = addr;
    ev.extra = static_cast<std::uint32_t>(bytes);
    ev.node = static_cast<std::uint16_t>(src);
    ev.tile = obs::kTraceOffChip;
    tracer_->record(ev);
}

bool
PcieFabric::deferToBarrier(std::function<void()> reissue)
{
    if (!router_ || sim::currentNode() == sim::kNoNode)
        return false;
    if (stats_)
        stats_->counter("pcie.deferred").increment();
    router_->post(std::move(reissue));
    return true;
}

bool
PcieFabric::preempt(const sim::FaultDecision &d, const CompletionFn &done)
{
    if (d.drop) {
        // Lost in flight: the issuer sees a completion timeout, surfaced
        // as a late SLVERR so no caller waits forever.
        if (done) {
            eq_.schedule(completionTimeout(),
                         [done] { done(Completion{axi::Resp::kSlvErr, {}}); });
        }
        return true;
    }
    if (d.slvErr) {
        if (done) {
            eq_.schedule(2 * oneWay_,
                         [done] { done(Completion{axi::Resp::kSlvErr, {}}); });
        }
        return true;
    }
    return false;
}

void
PcieFabric::write(FpgaId src, axi::WriteReq req, CompletionFn done)
{
    if (deferToBarrier([this, src, req, done]() mutable {
            write(src, std::move(req), std::move(done));
        }))
        return;
    const FabricWindow *w = decode(req.addr);
    if (!w) {
        ++decodeErrors_;
        if (done)
            eq_.schedule(1, [done] { done(Completion{axi::Resp::kDecErr}); });
        return;
    }
    sim::FaultDecision fd;
    if (fault_) {
        fd = fault_->decide("pcie.write");
        if (preempt(fd, done))
            return;
        if (fd.corrupt && !req.data.empty())
            fault_->corruptBytes("pcie.write", req.data.data(),
                                 req.data.size());
    }
    Cycles arrival = transferArrival(src, req.data.size() + 32) +
                     fd.extraDelay;
    if (tracer_)
        traceTransfer(true, src, req.addr, req.data.size() + 32, arrival);
    axi::Target *target = w->target;
    // Deliver at the far side, then return the B response across the
    // fabric (response transfers are small TLPs).
    eq_.scheduleAt(arrival, [this, target, req = std::move(req), done,
                             src]() mutable {
        axi::WriteResp resp = target->write(req);
        if (!done)
            return;
        Cycles back = transferArrival(src, 32);
        eq_.scheduleAt(back, [done, resp] {
            done(Completion{resp.resp, {}});
        });
    });
}

void
PcieFabric::read(FpgaId src, axi::ReadReq req, CompletionFn done)
{
    if (deferToBarrier([this, src, req, done]() mutable {
            read(src, std::move(req), std::move(done));
        }))
        return;
    const FabricWindow *w = decode(req.addr);
    if (!w) {
        ++decodeErrors_;
        if (done)
            eq_.schedule(1, [done] { done(Completion{axi::Resp::kDecErr}); });
        return;
    }
    sim::FaultDecision fd;
    if (fault_) {
        fd = fault_->decide("pcie.read");
        if (preempt(fd, done))
            return;
    }
    Cycles arrival = transferArrival(src, 32) + fd.extraDelay;
    if (tracer_)
        traceTransfer(false, src, req.addr, 32, arrival);
    axi::Target *target = w->target;
    bool corrupt = fd.corrupt;
    eq_.scheduleAt(arrival, [this, target, req = std::move(req), done,
                             src, corrupt]() mutable {
        axi::ReadResp resp = target->read(req);
        if (!done)
            return;
        // Corruption hits the response TLP on its way back.
        if (corrupt && fault_ && !resp.data.empty())
            fault_->corruptBytes("pcie.read", resp.data.data(),
                                 resp.data.size());
        Cycles back = transferArrival(src, resp.data.size() + 32);
        eq_.scheduleAt(back, [done, resp = std::move(resp)] {
            done(Completion{resp.resp, std::move(resp.data)});
        });
    });
}

void
PcieFabric::saveState(snap::Writer &w) const
{
    // Links materialize lazily in first-use order; serialize them sorted
    // by endpoint id so the payload is history-independent.
    std::vector<const std::pair<FpgaId, sim::TrafficShaper> *> sorted;
    sorted.reserve(links_.size());
    for (const auto &link : links_)
        sorted.push_back(&link);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  return a->first < b->first;
              });
    w.u64(sorted.size());
    for (const auto *link : sorted) {
        w.u32(link->first);
        saveShaper(w, link->second);
    }
    w.u64(transfers_);
    w.u64(bytesMoved_);
    w.u64(decodeErrors_);
}

void
PcieFabric::restoreState(snap::Reader &r)
{
    std::uint64_t link_count = r.u64();
    std::vector<FpgaId> restored;
    for (std::uint64_t i = 0; i < link_count; ++i) {
        FpgaId endpoint = static_cast<FpgaId>(r.u32());
        // linkOf materializes endpoints the live fabric has not used yet.
        restoreShaper(r, linkOf(endpoint));
        restored.push_back(endpoint);
    }
    // A rollback restore may find links materialized after the checkpoint
    // was taken; reset them so post-restore execution matches a fresh run.
    for (auto &[id, shaper] : links_) {
        if (std::find(restored.begin(), restored.end(), id) !=
            restored.end())
            continue;
        sim::QueueServer &server = shaper.server();
        server.restore(std::vector<Cycles>(server.lanes().size(), 0), 0, 0,
                       0);
        shaper.setBytesSent(0);
    }
    transfers_ = r.u64();
    bytesMoved_ = r.u64();
    decodeErrors_ = r.u64();
}

} // namespace smappic::pcie
