/**
 * @file
 * Model of the F1 instance's PCIe fabric and the AWS hard shell's
 * AXI4<->PCIe transducer function.
 *
 * Each FPGA's custom logic emits outbound AXI4 transactions; the hard shell
 * converts them to PCIe transfers that are routed by address window either
 * to a peer FPGA (direct FPGA-to-FPGA, bypassing the host CPU) or to the
 * host. The measured characteristics from the paper apply: ~1250 ns
 * round-trip (125 cycles at 100 MHz), so one-way delivery costs half the
 * round trip, and responses cost the other half.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/parallel.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::obs
{
class Tracer;
}

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::pcie
{

/** Source id used by the host (PCIe driver / host programs). */
inline constexpr FpgaId kHostId = 0xff;

/** Completion of a fabric transaction. */
struct Completion
{
    axi::Resp resp = axi::Resp::kOkay;
    std::vector<std::uint8_t> data; ///< Read data (empty for writes).
};

using CompletionFn = std::function<void(Completion)>;

/**
 * The PCIe interconnect of one F1 instance. Owns the address map of all
 * FPGA windows plus the host window and moves transactions between them
 * with modeled latency and bandwidth.
 */
class PcieFabric
{
  public:
    /**
     * @param eq Shared event queue.
     * @param one_way One-way transfer latency in cycles.
     * @param bytes_per_cycle Per-endpoint link bandwidth (0 = uncapped).
     * @param stats Registry for fabric counters ("pcie." prefix).
     */
    PcieFabric(sim::EventQueue &eq, Cycles one_way, double bytes_per_cycle,
               sim::StatRegistry *stats);

    /**
     * Maps @p target at [base, base+size) in the fabric address space,
     * owned by endpoint @p owner (an FPGA id or kHostId).
     */
    void addWindow(Addr base, std::uint64_t size, axi::Target *target,
                   FpgaId owner, std::string name);

    /**
     * Issues a write from endpoint @p src. The completion callback fires
     * when the B response makes it back across the fabric.
     */
    void write(FpgaId src, axi::WriteReq req, CompletionFn done);

    /** Issues a read from endpoint @p src (see write()). */
    void read(FpgaId src, axi::ReadReq req, CompletionFn done);

    /**
     * Attaches a fault injector (null to detach). Sites: "pcie.write"
     * and "pcie.read". Drop loses the request in flight — the issuer's
     * completion comes back SLVERR after a completion-timeout interval,
     * mirroring a PCIe completion timeout, so callers never wedge.
     * Corrupt flips one payload bit in flight; delay adds transit
     * cycles; slverr completes with SLVERR without reaching the target.
     */
    void setFaultInjector(sim::FaultInjector *fi) { fault_ = fi; }

    /**
     * Attaches the phased engine's mailbox (null to detach). With a
     * router set, transactions issued from inside a node phase are
     * deferred to the next quantum boundary and re-issued there in
     * deterministic mailbox order — the fabric's event bookkeeping then
     * only ever runs in serial context. Transactions issued from serial
     * context (setup, host drivers, barrier events) are unaffected.
     */
    void setRouter(sim::MailboxRouter *router) { router_ = router; }

    /**
     * Attaches the platform tracer (null to detach). Each accepted
     * transaction emits kPcieWrite/kPcieRead with duration = one-way
     * transit (issue to far-side arrival); deferred transactions are
     * traced when re-issued at the barrier, in mailbox order.
     */
    void setTracer(obs::Tracer *tracer);

    Cycles oneWayLatency() const { return oneWay_; }

    /** Cycles until a lost transaction's SLVERR completion fires. */
    Cycles completionTimeout() const { return 8 * oneWay_; }

    std::uint64_t transfers() const { return transfers_; }
    std::uint64_t bytesMoved() const { return bytesMoved_; }
    std::uint64_t decodeErrors() const { return decodeErrors_; }

    /** Serializes per-endpoint link shapers and fabric counters. */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    struct FabricWindow
    {
        Addr base;
        std::uint64_t size;
        axi::Target *target;
        FpgaId owner;
        std::string name;
    };

    const FabricWindow *decode(Addr addr) const;
    sim::TrafficShaper &linkOf(FpgaId endpoint);

    /** Computes the arrival time of a @p bytes transfer from @p src. */
    Cycles transferArrival(FpgaId src, std::uint64_t bytes);

    /** Applies a fault decision shared by read()/write(); returns true
     *  when the transaction was consumed (dropped or errored). */
    bool preempt(const sim::FaultDecision &d, const CompletionFn &done);

    /** Defers the call to the next barrier when inside a node phase.
     *  @return True when the transaction was queued on the mailbox. */
    bool deferToBarrier(std::function<void()> reissue);

    sim::EventQueue &eq_;
    Cycles oneWay_;
    double bytesPerCycle_;
    sim::StatRegistry *stats_;
    sim::FaultInjector *fault_ = nullptr;
    sim::MailboxRouter *router_ = nullptr;
    obs::Tracer *tracer_ = nullptr;

    /** Emits a kPcieWrite/kPcieRead event for a transaction from @p src
     *  spanning [now, arrival). */
    void traceTransfer(bool is_write, FpgaId src, Addr addr,
                       std::uint64_t bytes, Cycles arrival);

    std::vector<FabricWindow> windows_;
    std::vector<std::pair<FpgaId, sim::TrafficShaper>> links_;

    std::uint64_t transfers_ = 0;
    std::uint64_t bytesMoved_ = 0;
    std::uint64_t decodeErrors_ = 0;
};

} // namespace smappic::pcie
